package serve

import (
	"context"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"powerrchol"
	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

// Shared helpers for the serve test suite.

// testSystem builds a small 2D power-grid SDDM with ground pads.
func testSystem(nx, ny int) *graph.SDDM {
	sys := testmat.GridSDDM(nx, ny)
	return sys
}

// testRHS builds a deterministic right-hand side of length n.
func testRHS(n int, seed uint64) []float64 {
	r := rng.New(seed)
	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	return b
}

func testOptions() powerrchol.Options {
	return powerrchol.Options{Method: powerrchol.MethodLTRChol, Seed: 7, Tol: 1e-10}
}

// newTestServer builds a server + httptest wrapper and registers cleanup
// that drains it and asserts goroutine hygiene.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	s := New(ctx, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer scancel()
		if err := s.Shutdown(sctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		cancel()
	})
	return s, ts
}

// waitGoroutines polls until the goroutine count settles back to at most
// base+slack, failing the test if it never does. runtime.NumGoroutine is
// inherently racy with the runtime's own background goroutines, so the
// check is a bounded settle, not an instantaneous equality.
func waitGoroutines(t *testing.T, base, slack int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base+slack {
			return
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines did not settle: %d now vs %d at start (+%d slack)", n, base, slack)
}
