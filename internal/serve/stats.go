package serve

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// metrics is the service's observability state: monotone counters for
// every admission/solve outcome plus a bounded reservoir of recent
// request latencies for quantile reporting. Everything is lock-free on
// the hot path except the latency ring, whose mutex guards a fixed-size
// buffer write (~ns); the /statsz snapshot pays the sorting cost, not
// the request path.
type metrics struct {
	admitted  atomic.Int64 // requests that passed admission control
	shed      atomic.Int64 // rejected 429 (queue full)
	refused   atomic.Int64 // rejected 503 (draining or critical pressure)
	timeouts  atomic.Int64 // requests that hit their deadline
	solveErrs atomic.Int64 // solves that failed with a non-ctx error
	panics    atomic.Int64 // handler panics isolated by the recovery middleware
	batches   atomic.Int64 // micro-batch windows dispatched
	batched   atomic.Int64 // right-hand sides carried by those windows
	rebuilds  atomic.Int64 // cache entries rebuilt after a poisoned solve
	studies   atomic.Int64 // workload studies admitted (POST /v1/study)

	lat latencyRing
}

// Stats is the JSON snapshot served by /statsz and consumed by the
// pgload driver's summary.
type Stats struct {
	Admitted   int64 `json:"admitted"`
	Shed       int64 `json:"shed"`
	Refused    int64 `json:"refused"`
	Timeouts   int64 `json:"timeouts"`
	SolveErrs  int64 `json:"solve_errors"`
	Panics     int64 `json:"panics"`
	Batches    int64 `json:"batches"`
	BatchedRHS int64 `json:"batched_rhs"`
	Rebuilds   int64 `json:"rebuilds"`
	Studies    int64 `json:"studies"`

	P50Micros int64 `json:"p50_us"`
	P99Micros int64 `json:"p99_us"`

	CacheHits      int64 `json:"cache_hits"`
	CacheMisses    int64 `json:"cache_misses"`
	CacheEvictions int64 `json:"cache_evictions"`
	CacheEntries   int   `json:"cache_entries"`
	CacheBytes     int64 `json:"cache_bytes"`
	CacheBudget    int64 `json:"cache_budget"`

	Queued      int64  `json:"queued"`
	Inflight    int64  `json:"inflight"`
	MaxInflight int    `json:"max_inflight"`
	MaxQueue    int    `json:"max_queue"`
	Level       string `json:"pressure"`
	Draining    bool   `json:"draining"`
	Grids       int    `json:"grids"`
}

func (m *metrics) snapshot() Stats {
	return Stats{
		Admitted:   m.admitted.Load(),
		Shed:       m.shed.Load(),
		Refused:    m.refused.Load(),
		Timeouts:   m.timeouts.Load(),
		SolveErrs:  m.solveErrs.Load(),
		Panics:     m.panics.Load(),
		Batches:    m.batches.Load(),
		BatchedRHS: m.batched.Load(),
		Rebuilds:   m.rebuilds.Load(),
		Studies:    m.studies.Load(),
		P50Micros:  m.lat.quantile(0.50).Microseconds(),
		P99Micros:  m.lat.quantile(0.99).Microseconds(),
	}
}

// latencyRing keeps the last `latencyWindow` request latencies. A
// bounded reservoir is the robustness choice: quantiles track current
// behaviour (not the whole process history) and memory is fixed no
// matter how long the daemon runs.
const latencyWindow = 4096

type latencyRing struct {
	mu   sync.Mutex
	buf  [latencyWindow]time.Duration
	next int
	full bool
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.next] = d
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// quantile reports the p-quantile (0 ≤ p ≤ 1) of the recorded window,
// 0 when nothing has been recorded yet.
func (r *latencyRing) quantile(p float64) time.Duration {
	r.mu.Lock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	scratch := make([]time.Duration, n)
	copy(scratch, r.buf[:n])
	r.mu.Unlock()
	if n == 0 {
		return 0
	}
	sort.Slice(scratch, func(i, j int) bool { return scratch[i] < scratch[j] })
	idx := int(p * float64(n-1))
	return scratch[idx]
}
