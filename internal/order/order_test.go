package order

import (
	"testing"
	"testing/quick"

	"powerrchol/internal/chol"
	"powerrchol/internal/core"
	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

func allOrderings(g *graph.Graph) map[string][]int {
	return map[string][]int{
		"natural": Natural(g.N),
		"alg4":    Alg4(g, 0, nil),
		"rcm":     RCM(g),
		"amd":     AMD(g),
		"nd":      ND(g),
	}
}

func TestNDReducesCompleteFillOnGrid(t *testing.T) {
	s := testmat.GridSDDM(24, 24)
	a := s.ToCSC()
	natF, err := chol.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	ndF, err := chol.Factorize(a, ND(s.G))
	if err != nil {
		t.Fatal(err)
	}
	if ndF.NNZ() >= natF.NNZ() {
		t.Errorf("ND fill %d not better than natural %d on a grid", ndF.NNZ(), natF.NNZ())
	}
	t.Logf("24x24 grid complete fill: natural=%d nd=%d", natF.NNZ(), ndF.NNZ())
}

func TestNDOnPathological(t *testing.T) {
	// clique: separator logic must terminate and produce a permutation
	k := graph.New(40, 0)
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			k.MustAddEdge(i, j, 1)
		}
	}
	if err := sparse.CheckPerm(ND(k), 40); err != nil {
		t.Error(err)
	}
	// star
	star := graph.New(50, 49)
	for i := 1; i < 50; i++ {
		star.MustAddEdge(0, i, 1)
	}
	if err := sparse.CheckPerm(ND(star), 50); err != nil {
		t.Error(err)
	}
}

func TestAllOrderingsArePermutations(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%60) + 2
		g := testmat.RandomConnectedGraph(r, n, n)
		for name, p := range allOrderings(g) {
			if err := sparse.CheckPerm(p, n); err != nil {
				t.Logf("%s: %v", name, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestOrderingsOnDisconnectedGraph(t *testing.T) {
	g := graph.New(6, 2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(3, 4, 1) // nodes 2 and 5 isolated
	for name, p := range allOrderings(g) {
		if err := sparse.CheckPerm(p, 6); err != nil {
			t.Errorf("%s on disconnected graph: %v", name, err)
		}
	}
}

func TestAlg4DegreeAscending(t *testing.T) {
	r := rng.New(5)
	g := testmat.RandomConnectedGraph(r, 80, 160)
	p := Alg4(g, 0, nil)
	deg := g.Degrees()
	for i := 1; i < len(p); i++ {
		if deg[p[i-1]] > deg[p[i]] {
			t.Fatalf("Alg4 not degree-ascending at position %d: deg %d then %d",
				i, deg[p[i-1]], deg[p[i]])
		}
	}
}

func TestAlg4HeavyNodesFirstWithinDegreeClass(t *testing.T) {
	// A 12-cycle of unit edges with one weight-1000 edge between nodes 4
	// and 5: every node has degree 2, the average weight is ~84, so only
	// nodes 4 and 5 exceed the 10x-average threshold and must lead the
	// degree-2 class.
	const n = 12
	g := graph.New(n, n)
	for i := 0; i < n; i++ {
		w := 1.0
		if i == 4 { // edge 4-5
			w = 1000
		}
		g.MustAddEdge(i, (i+1)%n, w)
	}
	p := Alg4(g, 0, nil)
	pos := make([]int, n)
	for i, v := range p {
		pos[v] = i
	}
	if pos[4] > 1 || pos[5] > 1 {
		t.Errorf("heavy nodes 4,5 at positions %d,%d; want the first two slots", pos[4], pos[5])
	}
	// with the heavy rule disabled, the stable counting sort keeps node order
	p2 := Alg4(g, 1e300, nil)
	for i, v := range p2 {
		if v != i {
			t.Fatalf("heavy rule not disabled: p2[%d] = %d", i, v)
		}
	}
}

func TestAMDReducesCompleteFillOnGrid(t *testing.T) {
	s := testmat.GridSDDM(20, 20)
	a := s.ToCSC()
	g := s.G
	natF, err := chol.Factorize(a, nil)
	if err != nil {
		t.Fatal(err)
	}
	amdF, err := chol.Factorize(a, AMD(g))
	if err != nil {
		t.Fatal(err)
	}
	if amdF.NNZ() >= natF.NNZ() {
		t.Errorf("AMD fill %d not better than natural %d on a grid", amdF.NNZ(), natF.NNZ())
	}
	rcmF, err := chol.Factorize(a, RCM(g))
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("complete Cholesky nnz on 20x20 grid: natural=%d rcm=%d amd=%d",
		natF.NNZ(), rcmF.NNZ(), amdF.NNZ())
}

// The paper's Table 2 behaviour in miniature: on power-grid-like meshes,
// randomized-factor fill under Alg. 4 should be within a modest factor of
// AMD and clearly below natural order.
func TestOrderingQualityForRandomizedFactorization(t *testing.T) {
	s := testmat.GridSDDM(40, 40)
	nnz := map[string]int{}
	for name, p := range allOrderings(s.G) {
		f, err := core.Factorize(s, p, core.Options{Variant: core.VariantLT, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		nnz[name] = f.NNZ()
	}
	t.Logf("LT-RChol fill on 40x40 grid: %v", nnz)
	if nnz["amd"] > nnz["natural"] {
		t.Errorf("AMD fill %d worse than natural %d", nnz["amd"], nnz["natural"])
	}
	if nnz["alg4"] > 2*nnz["amd"] {
		t.Errorf("Alg4 fill %d more than 2x AMD fill %d", nnz["alg4"], nnz["amd"])
	}
}

func TestAMDOnCliqueAndStar(t *testing.T) {
	// star: AMD must eliminate leaves before the hub
	star := graph.New(8, 7)
	for i := 1; i < 8; i++ {
		star.MustAddEdge(0, i, 1)
	}
	p := AMD(star)
	if p[len(p)-1] != 0 && p[len(p)-2] != 0 {
		// hub should be (nearly) last
		pos := 0
		for i, v := range p {
			if v == 0 {
				pos = i
			}
		}
		if pos < 4 {
			t.Errorf("AMD eliminated star hub at position %d", pos)
		}
	}
	// clique: any order is fine, just must be a valid permutation
	k := graph.New(6, 15)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			k.MustAddEdge(i, j, 1)
		}
	}
	if err := sparse.CheckPerm(AMD(k), 6); err != nil {
		t.Error(err)
	}
}

func TestRCMReducesBandwidthOnGrid(t *testing.T) {
	g := testmat.Grid2D(15, 15)
	p := RCM(g)
	inv := sparse.InvPerm(p)
	bw := 0
	for _, e := range g.Edges {
		d := inv[e.U] - inv[e.V]
		if d < 0 {
			d = -d
		}
		if d > bw {
			bw = d
		}
	}
	// natural order of a 15x15 grid has bandwidth 15; RCM should not be
	// dramatically worse and is typically near the optimum.
	if bw > 30 {
		t.Errorf("RCM bandwidth %d on 15x15 grid", bw)
	}
}

func TestAMDSupervariableMerging(t *testing.T) {
	// K_{2,m}: the m right-side nodes share the identical neighborhood
	// {a, b}, so AMD must fold them into supervariables and still emit a
	// valid permutation with the low-degree side handled sensibly.
	m := 40
	g := graph.New(2+m, 2*m)
	for i := 0; i < m; i++ {
		g.MustAddEdge(0, 2+i, 1)
		g.MustAddEdge(1, 2+i, 1)
	}
	p := AMD(g)
	if err := sparse.CheckPerm(p, 2+m); err != nil {
		t.Fatal(err)
	}
	// the two hubs see m neighbors each; right-side nodes see 2. The
	// right side must be eliminated first.
	pos := make([]int, 2+m)
	for i, v := range p {
		pos[v] = i
	}
	if pos[0] < m/2 || pos[1] < m/2 {
		t.Errorf("hubs eliminated early: positions %d, %d", pos[0], pos[1])
	}
}

func TestAMDFillMatchesOnStructuredGraphs(t *testing.T) {
	// Quality regression guard across graph classes: AMD's complete-
	// Cholesky fill must stay below natural order everywhere meshes are
	// concerned and never corrupt the permutation.
	r := rng.New(77)
	graphs := map[string]*graph.Graph{
		"grid":   testmat.Grid2D(24, 24),
		"random": testmat.RandomConnectedGraph(r, 300, 900),
	}
	for name, g := range graphs {
		d := make([]float64, g.N)
		d[0] = 1
		s, err := graph.NewSDDM(g, d)
		if err != nil {
			t.Fatal(err)
		}
		a := s.ToCSC()
		amdF, err := chol.Factorize(a, AMD(g))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		natF, err := chol.Factorize(a, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Logf("%s: fill natural=%d amd=%d", name, natF.NNZ(), amdF.NNZ())
		if amdF.NNZ() > natF.NNZ() {
			t.Errorf("%s: AMD fill %d worse than natural %d", name, amdF.NNZ(), natF.NNZ())
		}
	}
}

// TestAlg4SeededTieBreak pins the contract of the randomized tie order:
// replayable from the seed, different across seeds, and never violating
// the degree-ascending / heavy-first structure of Alg. 4.
func TestAlg4SeededTieBreak(t *testing.T) {
	r := rng.New(7)
	g := testmat.RandomConnectedGraph(r, 120, 260)

	a := Alg4(g, 0, rng.New(42))
	b := Alg4(g, 0, rng.New(42))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same tie-break seed diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}

	c := Alg4(g, 0, rng.New(43))
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different tie-break seeds produced the identical ordering (ties exist on a random graph; shuffle appears inert)")
	}

	if err := sparse.CheckPerm(a, g.N); err != nil {
		t.Fatal(err)
	}
	deg := g.Degrees()
	for i := 1; i < len(a); i++ {
		if deg[a[i-1]] > deg[a[i]] {
			t.Fatalf("shuffled Alg4 broke degree order at %d", i)
		}
	}
}

// TestAlg4SeededHeavyFirst: the shuffle must stay inside the heavy/light
// segments of each degree class.
func TestAlg4SeededHeavyFirst(t *testing.T) {
	const n = 12
	g := graph.New(n, n)
	for i := 0; i < n; i++ {
		w := 1.0
		if i == 4 {
			w = 1000
		}
		g.MustAddEdge(i, (i+1)%n, w)
	}
	for seed := uint64(0); seed < 8; seed++ {
		p := Alg4(g, 0, rng.New(seed))
		pos := make([]int, n)
		for i, v := range p {
			pos[v] = i
		}
		if pos[4] > 1 || pos[5] > 1 {
			t.Fatalf("seed %d: heavy nodes 4,5 at positions %d,%d; want the first two slots", seed, pos[4], pos[5])
		}
	}
}
