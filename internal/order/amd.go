package order

import (
	"sort"

	"powerrchol/internal/graph"
)

// AMD computes an approximate minimum degree ordering (Amestoy, Davis,
// Duff 1996) using a quotient-graph representation with element
// absorption, supervariable (indistinguishable-node) merging, and the AMD
// approximate external-degree bound
//
//	d_i ≈ min(n-k, d_i_old + |Lp|-|i|, |A_i \ Lp| + |Lp|-|i| + Σ_e |L_e \ Lp|)
//
// where |·| counts supervariable multiplicities, evaluated in one pass
// over the elements touching the pivot's fill set. Nodes with identical
// quotient-graph adjacency are detected by hashing after each pivot and
// merged, which is what keeps AMD's runtime near-linear on meshes.
func AMD(g *graph.Graph) []int {
	n := g.N
	if n == 0 {
		return nil
	}
	g.BuildAdj()

	// Quotient-graph state. A node index doubles as an element index once
	// eliminated (the element is the pivot's fill clique).
	const (
		stLive    = iota
		stElement // eliminated pivot, acting as an element
		stDead    // absorbed element
		stMerged  // variable merged into a supervariable
	)
	var (
		varAdj   = make([][]int32, n) // live variable neighbors
		elemAdj  = make([][]int32, n) // adjacent elements
		members  = make([][]int32, n) // element -> member variables (lazily pruned)
		elemSize = make([]int, n)     // Σ nv over live members (invariant under merging)
		nv       = make([]int32, n)   // supervariable multiplicity; 0 = merged away
		degree   = make([]int, n)     // weighted approximate external degree
		status   = make([]uint8, n)
		// merged-chain forest: emitted right after their representative
		child = make([]int32, n)
		sib   = make([]int32, n)
	)
	for i := 0; i < n; i++ {
		nv[i] = 1
		child[i] = -1
		sib[i] = -1
	}

	// Initial adjacency (deduplicate parallel edges with a stamp array).
	stampArr := make([]int32, n)
	for i := range stampArr {
		stampArr[i] = -1
	}
	for i := 0; i < n; i++ {
		lo, hi := g.Ptr[i], g.Ptr[i+1]
		lst := make([]int32, 0, hi-lo)
		for p := lo; p < hi; p++ {
			v := int32(g.Adj[p])
			if stampArr[v] != int32(i) && v != int32(i) {
				stampArr[v] = int32(i)
				lst = append(lst, v)
			}
		}
		varAdj[i] = lst
		degree[i] = len(lst)
	}

	// Degree buckets (doubly linked lists threaded through next/prev).
	head := make([]int32, n+1)
	next := make([]int32, n)
	prev := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	enqueue := func(i int) {
		d := degree[i]
		if d > n {
			d = n
		}
		degree[i] = d
		next[i] = head[d]
		prev[i] = -1
		if head[d] >= 0 {
			prev[head[d]] = int32(i)
		}
		head[d] = int32(i)
	}
	dequeue := func(i int) {
		if prev[i] >= 0 {
			next[prev[i]] = next[i]
		} else {
			head[degree[i]] = next[i]
		}
		if next[i] >= 0 {
			prev[next[i]] = prev[i]
		}
	}
	for i := 0; i < n; i++ {
		enqueue(i)
	}

	mark := make([]int32, n) // stamp: node in current Lp
	wStamp := make([]int32, n)
	w := make([]int, n) // Σ nv over L_e \ Lp, per element
	var stamp int32 = 1

	perm := make([]int, 0, n)
	emit := func(p int) {
		// p plus everything merged into it, depth-first
		stack := []int32{int32(p)}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			perm = append(perm, int(v))
			for c := child[v]; c != -1; c = sib[c] {
				stack = append(stack, c)
			}
		}
	}

	lp := make([]int32, 0, 64)
	hashBuckets := make(map[uint64][]int32, 64)
	hashKeys := make([]uint64, 0, 64) // bucket keys in first-seen order
	minDeg := 0
	emitted := 0

	for emitted < n {
		for minDeg <= n && head[minDeg] < 0 {
			minDeg++
		}
		p := int(head[minDeg])
		dequeue(p)
		status[p] = stElement
		emit(p)
		emitted += int(nv[p])

		// Form Lp = A_p ∪ (∪_{e∈E_p} L_e) \ {p}, deduplicated via mark.
		stamp++
		mark[p] = stamp
		lp = lp[:0]
		lpSize := 0
		for _, v := range varAdj[p] {
			if status[v] == stLive && mark[v] != stamp {
				mark[v] = stamp
				lp = append(lp, v)
				lpSize += int(nv[v])
			}
		}
		for _, e := range elemAdj[p] {
			if status[e] != stElement {
				continue
			}
			for _, v := range members[e] {
				if status[v] == stLive && mark[v] != stamp {
					mark[v] = stamp
					lp = append(lp, v)
					lpSize += int(nv[v])
				}
			}
			status[e] = stDead // absorbed into the new element p
			members[e] = nil
		}
		varAdj[p] = nil
		elemAdj[p] = nil
		if len(lp) == 0 {
			continue
		}

		// First pass over Lp: prune lists, attach element p, and compute
		// w(e) = Σ nv over L_e \ Lp for every touched element.
		for _, iv := range lp {
			i := int(iv)
			out := 0
			ai := varAdj[i]
			for _, v := range ai {
				if status[v] == stLive && mark[v] != stamp {
					ai[out] = v
					out++
				}
			}
			varAdj[i] = ai[:out]
			eo := 0
			ei := elemAdj[i]
			for _, e := range ei {
				if status[e] != stElement {
					continue
				}
				if wStamp[e] != stamp {
					wStamp[e] = stamp
					w[e] = elemSize[e]
				}
				w[e] -= int(nv[i])
				ei[eo] = e
				eo++
			}
			elemAdj[i] = append(ei[:eo], int32(p))
		}

		// Second pass: absorb dominated elements, recompute approximate
		// degrees, and hash for supervariable detection.
		hashBuckets = map[uint64][]int32{}
		hashKeys = hashKeys[:0]
		for _, iv := range lp {
			i := int(iv)
			d := lpSize - int(nv[i])
			for _, v := range varAdj[i] {
				d += int(nv[v])
			}
			var h uint64
			for _, v := range varAdj[i] {
				h += uint64(v)
			}
			eo := 0
			ei := elemAdj[i]
			for _, e := range ei {
				if int(e) == p {
					ei[eo] = e
					eo++
					h += uint64(e)
					continue
				}
				if status[e] != stElement {
					continue
				}
				if wStamp[e] == stamp && w[e] <= 0 {
					status[e] = stDead // L_e ⊆ Lp ∪ {p}
					members[e] = nil
					continue
				}
				if wStamp[e] == stamp {
					d += w[e]
				} else {
					d += elemSize[e]
				}
				ei[eo] = e
				eo++
				h += uint64(e)
			}
			elemAdj[i] = ei[:eo]

			if bd := degree[i] + lpSize - int(nv[i]); bd < d {
				d = bd
			}
			if bd := n - emitted - int(nv[i]); bd < d {
				d = bd
			}
			if d < 0 {
				d = 0
			}
			dequeue(i)
			degree[i] = d
			enqueue(i)
			if d < minDeg {
				minDeg = d
			}
			hh := h*0x9e3779b97f4a7c15 + uint64(len(varAdj[i]))<<32 + uint64(len(elemAdj[i]))
			if len(hashBuckets[hh]) == 0 {
				hashKeys = append(hashKeys, hh)
			}
			hashBuckets[hh] = append(hashBuckets[hh], iv)
		}

		// Supervariable merging: nodes with identical pruned adjacency are
		// indistinguishable for the remaining elimination; fold them into
		// one representative. Buckets are visited in first-seen order, never
		// map order: merges mutate the degree lists, so map-order iteration
		// would make the pivot sequence (and the ordering) vary run to run.
		for _, hh := range hashKeys {
			group := hashBuckets[hh]
			if len(group) < 2 {
				continue
			}
			for a := 0; a < len(group); a++ {
				i := group[a]
				if status[i] != stLive {
					continue
				}
				sortInt32(varAdj[i])
				sortInt32(elemAdj[i])
				for b := a + 1; b < len(group); b++ {
					j := group[b]
					if status[j] != stLive ||
						len(varAdj[j]) != len(varAdj[i]) ||
						len(elemAdj[j]) != len(elemAdj[i]) {
						continue
					}
					sortInt32(varAdj[j])
					sortInt32(elemAdj[j])
					if !equalInt32(varAdj[i], varAdj[j]) || !equalInt32(elemAdj[i], elemAdj[j]) {
						continue
					}
					// merge j into i
					dequeue(int(j))
					status[j] = stMerged
					sib[j] = child[i]
					child[i] = j
					nvj := nv[j]
					nv[i] += nvj
					nv[j] = 0
					varAdj[j] = nil
					elemAdj[j] = nil
					// the fused variable no longer sees j as external
					dequeue(int(i))
					degree[i] -= int(nvj)
					if degree[i] < 0 {
						degree[i] = 0
					}
					enqueue(int(i))
					if degree[i] < minDeg {
						minDeg = degree[i]
					}
				}
			}
		}

		// Register the new element: only surviving members matter (merged
		// ones carry nv = 0 and are skipped lazily).
		mem := make([]int32, 0, len(lp))
		for _, iv := range lp {
			if status[iv] == stLive {
				mem = append(mem, iv)
			}
		}
		members[p] = mem
		elemSize[p] = lpSize
	}
	return perm
}

func sortInt32(a []int32) {
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
}

func equalInt32(a, b []int32) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
