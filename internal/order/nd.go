package order

import (
	"powerrchol/internal/graph"
)

// ND computes a nested dissection ordering: recursively split the graph
// with a BFS level-set vertex separator, order the two halves first and
// the separator last. On planar-ish meshes this yields asymptotically
// optimal fill for complete factorization and is a useful third point of
// comparison between AMD (greedy, slow, best fill) and Alg. 4 (linear,
// randomization-aware).
func ND(g *graph.Graph) []int {
	n := g.N
	g.BuildAdj()
	perm := make([]int, 0, n)
	visited := make([]bool, n)
	// scratch reused across recursion levels
	level := make([]int32, n)
	for i := range level {
		level[i] = -1
	}
	var nd func(nodes []int)
	nd = func(nodes []int) {
		const leafSize = 32
		if len(nodes) <= leafSize {
			perm = append(perm, nodes...)
			return
		}
		left, right, sep := bisect(g, nodes, level)
		if len(sep) == 0 || len(left) == 0 || len(right) == 0 {
			// no useful separator (e.g. a clique): stop recursing
			perm = append(perm, nodes...)
			return
		}
		nd(left)
		nd(right)
		perm = append(perm, sep...)
	}
	// process each connected component among all nodes
	comp := make([]int, 0, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		comp = comp[:0]
		visited[s] = true
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			comp = append(comp, u)
			for p := g.Ptr[u]; p < g.Ptr[u+1]; p++ {
				if v := g.Adj[p]; !visited[v] {
					visited[v] = true
					queue = append(queue, v)
				}
			}
		}
		nd(append([]int(nil), comp...))
	}
	return perm
}

// bisect splits the node set with the middle BFS level from a pseudo-
// peripheral source as the separator. level is an n-sized scratch array
// holding -1 outside the current call.
func bisect(g *graph.Graph, nodes []int, level []int32) (left, right, sep []int) {
	inSet := level // reuse: mark membership with -2 first
	for _, v := range nodes {
		inSet[v] = -2
	}
	// BFS from nodes[0] to find a far node, then BFS again from it.
	src := nodes[0]
	for pass := 0; pass < 2; pass++ {
		frontier := []int{src}
		inSet[src] = 0
		maxLvl := int32(0)
		far := src
		for len(frontier) > 0 {
			var next []int
			for _, u := range frontier {
				for p := g.Ptr[u]; p < g.Ptr[u+1]; p++ {
					v := g.Adj[p]
					if inSet[v] == -2 {
						inSet[v] = inSet[u] + 1
						if inSet[v] > maxLvl {
							maxLvl = inSet[v]
							far = v
						}
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
		if pass == 0 {
			// reset levels for the second BFS
			for _, v := range nodes {
				inSet[v] = -2
			}
			src = far
			continue
		}
		// split at the middle level
		mid := maxLvl / 2
		for _, v := range nodes {
			switch l := inSet[v]; {
			case l < mid:
				left = append(left, v)
			case l == mid:
				sep = append(sep, v)
			default:
				right = append(right, v)
			}
		}
	}
	// restore scratch to -1
	for _, v := range nodes {
		level[v] = -1
	}
	return left, right, sep
}
