// Package order provides the matrix reordering strategies compared in the
// paper: the LT-RChol-oriented ordering of Alg. 4, the approximate minimum
// degree (AMD) algorithm it is benchmarked against, the natural order, and
// reverse Cuthill-McKee as an extra baseline.
//
// All functions return a permutation with perm[newIdx] = oldIdx: the node
// eliminated at step newIdx is original node oldIdx.
package order

import (
	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
)

// Natural returns the identity ordering.
func Natural(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	return p
}

// HeavyEdgeFactor is the Alg. 4 threshold: a node is "heavy" when its
// maximum incident edge weight exceeds this factor times the average edge
// weight, in which case it is pulled to the front of its degree class so
// it is eliminated while its degree is still small (Section 3.2, Eq. 12).
const HeavyEdgeFactor = 10.0

// Alg4 computes the LT-RChol-oriented reordering of the paper's Alg. 4:
// sort nodes by degree ascending (counting sort, O(n+m)), then within each
// degree class move heavy nodes to the front. heavyFactor <= 0 selects
// HeavyEdgeFactor; pass a huge value to disable the heavy rule (ablation).
//
// Alg. 4 does not specify the order of ties — nodes with equal degree and
// the same heaviness class. r != nil shuffles each tie segment with the
// given seeded generator, so a retry rung can explore a different (but
// replayable: same seed, same ordering) elimination order after a bad
// draw. r == nil keeps the deterministic natural-order ties of the plain
// counting sort. Randomness never crosses class boundaries: the ordering
// stays degree-ascending with heavy nodes leading their class either way.
func Alg4(g *graph.Graph, heavyFactor float64, r *rng.Rand) []int {
	if heavyFactor <= 0 {
		heavyFactor = HeavyEdgeFactor
	}
	n := g.N
	deg := g.Degrees()
	wmax := g.MaxIncidentWeight()
	threshold := heavyFactor * g.AvgWeight()

	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Counting sort by degree; within a degree bucket, heavy nodes first.
	// Two passes per bucket (heavy then light) keep it linear and stable.
	count := make([]int, maxDeg+2)
	for _, d := range deg {
		count[d+1]++
	}
	for i := 1; i < len(count); i++ {
		count[i] += count[i-1]
	}
	perm := make([]int, n)
	next := append([]int(nil), count[:maxDeg+1]...)
	for i := 0; i < n; i++ { // heavy nodes, in node order
		if wmax[i] > threshold {
			perm[next[deg[i]]] = i
			next[deg[i]]++
		}
	}
	var heavyEnd []int
	if r != nil {
		// next[d] currently marks the end of degree d's heavy segment.
		heavyEnd = append([]int(nil), next[:maxDeg+1]...)
	}
	for i := 0; i < n; i++ { // remaining nodes
		if wmax[i] <= threshold {
			perm[next[deg[i]]] = i
			next[deg[i]]++
		}
	}
	if r != nil {
		for d := 0; d <= maxDeg; d++ {
			shuffle(perm[count[d]:heavyEnd[d]], r)
			shuffle(perm[heavyEnd[d]:next[d]], r)
		}
	}
	return perm
}

// shuffle is an in-place Fisher–Yates permutation drawn from the seeded
// generator.
func shuffle(s []int, r *rng.Rand) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// RCM computes a reverse Cuthill-McKee ordering: BFS from a pseudo-
// peripheral node, visiting neighbors in ascending degree, reversed.
// Provided as an additional baseline for the reordering study.
func RCM(g *graph.Graph) []int {
	n := g.N
	g.BuildAdj()
	deg := g.Degrees()
	visited := make([]bool, n)
	orderOut := make([]int, 0, n)
	queue := make([]int, 0, n)
	// scratch for sorting a node's neighbors by degree (insertion sort —
	// neighbor lists are short in our matrices)
	var nbrs []int

	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		root := pseudoPeripheral(g, deg, start, visited)
		visited[root] = true
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			orderOut = append(orderOut, u)
			nbrs = nbrs[:0]
			for p := g.Ptr[u]; p < g.Ptr[u+1]; p++ {
				v := g.Adj[p]
				if !visited[v] {
					visited[v] = true
					nbrs = append(nbrs, v)
				}
			}
			for i := 1; i < len(nbrs); i++ {
				x := nbrs[i]
				j := i - 1
				for j >= 0 && deg[nbrs[j]] > deg[x] {
					nbrs[j+1] = nbrs[j]
					j--
				}
				nbrs[j+1] = x
			}
			queue = append(queue, nbrs...)
		}
	}
	// reverse
	for i, j := 0, len(orderOut)-1; i < j; i, j = i+1, j-1 {
		orderOut[i], orderOut[j] = orderOut[j], orderOut[i]
	}
	return orderOut
}

// pseudoPeripheral finds an approximate peripheral node of the component
// containing start by repeated BFS to the farthest minimum-degree node.
func pseudoPeripheral(g *graph.Graph, deg []int, start int, globalVisited []bool) int {
	root := start
	lastEcc := -1
	level := make(map[int]int)
	for iter := 0; iter < 8; iter++ {
		for k := range level {
			delete(level, k)
		}
		level[root] = 0
		queue := []int{root}
		far := root
		ecc := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := g.Ptr[u]; p < g.Ptr[u+1]; p++ {
				v := g.Adj[p]
				if globalVisited[v] {
					continue
				}
				if _, ok := level[v]; !ok {
					level[v] = level[u] + 1
					if level[v] > ecc || (level[v] == ecc && deg[v] < deg[far]) {
						ecc = level[v]
						far = v
					}
					queue = append(queue, v)
				}
			}
		}
		if ecc <= lastEcc {
			break
		}
		lastEcc = ecc
		root = far
	}
	return root
}
