package fegrass

import (
	"context"
	"errors"
	"testing"

	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

// TestCancelledContextAbortsSparsify: a pre-cancelled context must stop
// SparsifyContext at its first phase boundary.
func TestCancelledContextAbortsSparsify(t *testing.T) {
	s := testmat.RandomSDDM(rng.New(7), 200, 800)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SparsifyContext(ctx, s, DefaultRecoverFrac); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}

// TestCancelContextVariantsAgree: nil and background contexts must give
// the exact sparsifier the plain Sparsify entry point builds — the
// polls must not perturb edge scoring or selection.
func TestCancelContextVariantsAgree(t *testing.T) {
	s := testmat.RandomSDDM(rng.New(7), 200, 800)
	ref, err := Sparsify(s, DefaultRecoverFrac)
	if err != nil {
		t.Fatal(err)
	}
	for _, ctx := range []context.Context{nil, context.Background()} {
		sp, err := SparsifyContext(ctx, s, DefaultRecoverFrac)
		if err != nil {
			t.Fatal(err)
		}
		if sp.G.M() != ref.G.M() {
			t.Fatalf("context variant changed edge count: %d vs %d", sp.G.M(), ref.G.M())
		}
		for i, e := range sp.G.Edges {
			r := ref.G.Edges[i]
			if e.U != r.U || e.V != r.V || e.W != r.W {
				t.Fatalf("context variant changed edge %d: %+v vs %+v", i, e, r)
			}
		}
	}
}
