package fegrass

import (
	"math"
	"testing"
	"testing/quick"

	"powerrchol/internal/chol"
	"powerrchol/internal/graph"
	"powerrchol/internal/order"
	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

func TestSparsifierIsConnectedSpanningSubgraph(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		r := rng.New(seed)
		n := int(nRaw%50) + 3
		s := testmat.RandomSDDM(r, n, 3*n)
		sp, err := Sparsify(s, DefaultRecoverFrac)
		if err != nil {
			return false
		}
		if sp.N() != n {
			return false
		}
		// spanning forest + recovered edges of a connected graph is connected
		if s.G.Connected() && !sp.G.Connected() {
			return false
		}
		// subgraph: every sparsifier edge exists in the original
		orig := map[[2]int]float64{}
		for _, e := range s.G.Edges {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			orig[[2]int{u, v}] = e.W
		}
		for _, e := range sp.G.Edges {
			u, v := e.U, e.V
			if u > v {
				u, v = v, u
			}
			if w, ok := orig[[2]int{u, v}]; !ok || w != e.W {
				return false
			}
		}
		// edge budget: tree (n-1) + frac*n
		return sp.G.M() <= n-1+int(DefaultRecoverFrac*float64(n))+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTreeResistanceExactOnPath(t *testing.T) {
	// path of weights 2: resistance between nodes i and j is |i-j|/2
	n := 16
	edges := make([]graph.Edge, n-1)
	for i := 0; i < n-1; i++ {
		edges[i] = graph.Edge{U: i, V: i + 1, W: 2}
	}
	tr := newTreeResistance(n, edges)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			want := math.Abs(float64(i-j)) / 2
			if got := tr.Resistance(i, j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("R(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestTreeResistanceOnStar(t *testing.T) {
	// star with distinct weights: R(leaf_i, leaf_j) = 1/w_i + 1/w_j
	n := 10
	edges := make([]graph.Edge, n-1)
	for i := 1; i < n; i++ {
		edges[i-1] = graph.Edge{U: 0, V: i, W: float64(i)}
	}
	tr := newTreeResistance(n, edges)
	for i := 1; i < n; i++ {
		for j := i + 1; j < n; j++ {
			want := 1/float64(i) + 1/float64(j)
			if got := tr.Resistance(i, j); math.Abs(got-want) > 1e-12 {
				t.Fatalf("R(%d,%d) = %g, want %g", i, j, got, want)
			}
		}
	}
}

func TestMaxSpanningForestIsMaximum(t *testing.T) {
	r := rng.New(4)
	g := testmat.RandomConnectedGraph(r, 20, 30)
	treeIdx, offIdx := maxSpanningForest(g)
	if len(treeIdx) != g.N-1 {
		t.Fatalf("spanning tree has %d edges, want %d", len(treeIdx), g.N-1)
	}
	if len(treeIdx)+len(offIdx) != g.M() {
		t.Fatalf("edge partition broken: %d + %d != %d", len(treeIdx), len(offIdx), g.M())
	}
	// cut optimality spot-check: swapping any off-tree edge for the
	// lightest tree edge on its cycle cannot increase total weight, which
	// for a max-ST means every off-tree weight <= max tree weight.
	var minTree = math.Inf(1)
	for _, ei := range treeIdx {
		if w := g.Edges[ei].W; w < minTree {
			minTree = w
		}
	}
	// (weak sanity: the heaviest edge overall must be in the tree)
	heaviest := 0
	for i := range g.Edges {
		if g.Edges[i].W > g.Edges[heaviest].W {
			heaviest = i
		}
	}
	inTree := false
	for _, ei := range treeIdx {
		if ei == heaviest {
			inTree = true
		}
	}
	if !inTree {
		t.Error("heaviest edge missing from maximum spanning tree")
	}
}

func TestSparsifierPreconditionsPCG(t *testing.T) {
	// The paper's feGRASS pipeline: sparsify, complete-Cholesky the
	// sparsifier under AMD, use as PCG preconditioner.
	r := rng.New(8)
	s := testmat.GridSDDM(30, 30)
	sp, err := Sparsify(s, DefaultRecoverFrac)
	if err != nil {
		t.Fatal(err)
	}
	spc := sp.ToCSC()
	fac, err := chol.Factorize(spc, order.AMD(sp.G))
	if err != nil {
		t.Fatal(err)
	}
	a := s.ToCSC()
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	res, err := pcg.Solve(a, b, fac, pcg.Options{Tol: 1e-6, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("feGRASS-preconditioned PCG did not converge: %g", res.Residual)
	}
	t.Logf("30x30 grid feGRASS-PCG iterations: %d (sparsifier %d of %d edges)",
		res.Iterations, sp.G.M(), s.G.M())
}

func TestRecoveryBudgetMonotone(t *testing.T) {
	// More recovered edges => faster convergence (fewer PCG iterations).
	r := rng.New(14)
	s := testmat.GridSDDM(25, 25)
	a := s.ToCSC()
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64()
	}
	iters := map[float64]int{}
	for _, frac := range []float64{0.0, 0.10, 0.50} {
		sp, err := Sparsify(s, frac)
		if err != nil {
			t.Fatal(err)
		}
		fac, err := chol.Factorize(sp.ToCSC(), order.AMD(sp.G))
		if err != nil {
			t.Fatal(err)
		}
		res, err := pcg.Solve(a, b, fac, pcg.Options{Tol: 1e-8, MaxIter: 2000})
		if err != nil || !res.Converged {
			t.Fatalf("frac %g: %v conv=%v", frac, err, res != nil && res.Converged)
		}
		iters[frac] = res.Iterations
	}
	t.Logf("iterations by recovery fraction: %v", iters)
	if iters[0.50] > iters[0.0] {
		t.Errorf("recovering 50%% of edges did not help: %v", iters)
	}
}

func TestSparsifyRejectsNegativeFraction(t *testing.T) {
	s := testmat.GridSDDM(4, 4)
	if _, err := Sparsify(s, -0.1); err == nil {
		t.Fatal("negative fraction accepted")
	}
}
