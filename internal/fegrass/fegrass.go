// Package fegrass implements a feGRASS-style spectral graph sparsifier
// [Liu, Yu, Feng, TCAD 2022]: a maximum-weight spanning tree augmented
// with the most spectrally critical off-tree edges, ranked by
// w_e · R_tree(e) where R_tree is the effective resistance of the tree
// path joining the edge's endpoints. The sparsifier's Laplacian (plus the
// original diagonal slack) is factorized — completely for the feGRASS-PCG
// baseline, incompletely for feGRASS-IChol — and used as a PCG
// preconditioner.
//
// The published feGRASS avoids the O(m log m) sort with BFS-based
// effective-weight approximations; we use exact Kruskal and exact tree
// resistances via binary-lifting LCA, a simplification that can only make
// the baseline's sparsifier better (see DESIGN.md §3).
package fegrass

import (
	"context"
	"fmt"
	"sort"

	"powerrchol/internal/graph"
)

// cancelCheckStride is how many edges are processed between context
// polls, matching core's and chol's column stride.
const cancelCheckStride = 1024

// DefaultRecoverFrac is the paper's off-tree recovery budget for the
// feGRASS-PCG baseline: 2% of |V| edges.
const DefaultRecoverFrac = 0.02

// IcholRecoverFrac is the recovery budget used by the feGRASS-IChol
// baseline [9]: 50% of |V| edges.
const IcholRecoverFrac = 0.50

// Sparsify returns the spectral sparsifier of s: its maximum-weight
// spanning forest plus the ⌈frac·|V|⌉ off-tree edges with the largest
// w_e·R_tree(e) scores. The diagonal slack D is carried over unchanged.
func Sparsify(s *graph.SDDM, frac float64) (*graph.SDDM, error) {
	return SparsifyContext(context.Background(), s, frac)
}

// SparsifyContext is Sparsify under a context: ctx is polled between the
// construction phases and every cancelCheckStride edges inside them, and
// a cancelled or expired context aborts the sparsification with an error
// wrapping ctx.Err(). A nil ctx means never cancelled.
func SparsifyContext(ctx context.Context, s *graph.SDDM, frac float64) (*graph.SDDM, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if frac < 0 {
		return nil, fmt.Errorf("fegrass: negative recovery fraction %g", frac)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fegrass: cancelled before spanning forest: %w", err)
	}
	g := s.G
	n := g.N

	treeIdx, offIdx := maxSpanningForest(g)
	tree := make([]graph.Edge, len(treeIdx))
	for i, e := range treeIdx {
		tree[i] = g.Edges[e]
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("fegrass: cancelled before edge scoring: %w", err)
	}
	lca := newTreeResistance(n, tree)

	// Score and rank off-tree edges.
	type scored struct {
		idx   int
		score float64
	}
	sc := make([]scored, len(offIdx))
	for i, ei := range offIdx {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("fegrass: cancelled scoring edge %d of %d: %w", i, len(offIdx), err)
			}
		}
		e := g.Edges[ei]
		r := lca.Resistance(e.U, e.V)
		sc[i] = scored{idx: ei, score: e.W * r}
	}
	sort.Slice(sc, func(i, j int) bool { return sc[i].score > sc[j].score })

	budget := int(frac * float64(n))
	if budget > len(sc) {
		budget = len(sc)
	}
	out := graph.New(n, len(tree)+budget)
	for i, e := range tree {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("fegrass: cancelled assembling sparsifier: %w", err)
			}
		}
		out.MustAddEdge(e.U, e.V, e.W)
	}
	for i := 0; i < budget; i++ {
		if i%cancelCheckStride == 0 {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("fegrass: cancelled assembling sparsifier: %w", err)
			}
		}
		e := g.Edges[sc[i].idx]
		out.MustAddEdge(e.U, e.V, e.W)
	}
	d := append([]float64(nil), s.D...)
	return graph.NewSDDM(out, d)
}

// maxSpanningForest runs Kruskal on descending edge weight and returns
// the indices of tree edges and off-tree edges.
func maxSpanningForest(g *graph.Graph) (tree, off []int) {
	idx := make([]int, len(g.Edges))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return g.Edges[idx[a]].W > g.Edges[idx[b]].W })
	uf := newUnionFind(g.N)
	tree = make([]int, 0, g.N-1)
	off = make([]int, 0, len(g.Edges))
	for _, ei := range idx {
		e := g.Edges[ei]
		if uf.union(e.U, e.V) {
			tree = append(tree, ei)
		} else {
			off = append(off, ei)
		}
	}
	return tree, off
}

type unionFind struct {
	parent []int
	rank   []uint8
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]uint8, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}

// treeResistance answers tree-path effective resistance queries
// R(u,v) = Σ 1/w over the unique tree path, via binary-lifting LCA.
type treeResistance struct {
	depth []int32
	res   []float64 // resistance from root to node
	up    [][]int32 // up[k][v]: 2^k-th ancestor (-1 above the root)
}

func newTreeResistance(n int, tree []graph.Edge) *treeResistance {
	// adjacency of the forest
	ptr := make([]int, n+1)
	for _, e := range tree {
		ptr[e.U+1]++
		ptr[e.V+1]++
	}
	for i := 0; i < n; i++ {
		ptr[i+1] += ptr[i]
	}
	adj := make([]int32, 2*len(tree))
	wts := make([]float64, 2*len(tree))
	next := append([]int(nil), ptr[:n]...)
	for _, e := range tree {
		adj[next[e.U]] = int32(e.V)
		wts[next[e.U]] = e.W
		next[e.U]++
		adj[next[e.V]] = int32(e.U)
		wts[next[e.V]] = e.W
		next[e.V]++
	}

	levels := 1
	for 1<<levels < n {
		levels++
	}
	tr := &treeResistance{
		depth: make([]int32, n),
		res:   make([]float64, n),
		up:    make([][]int32, levels),
	}
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -2 // unvisited
	}
	// iterative BFS per forest component
	queue := make([]int32, 0, n)
	for root := 0; root < n; root++ {
		if parent[root] != -2 {
			continue
		}
		parent[root] = -1
		tr.depth[root] = 0
		tr.res[root] = 0
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for p := ptr[u]; p < ptr[u+1]; p++ {
				v := adj[p]
				if parent[v] == -2 {
					parent[v] = u
					tr.depth[v] = tr.depth[u] + 1
					tr.res[v] = tr.res[u] + 1/wts[p]
					queue = append(queue, v)
				}
			}
		}
	}
	tr.up[0] = parent
	for k := 1; k < levels; k++ {
		prev := tr.up[k-1]
		cur := make([]int32, n)
		for v := 0; v < n; v++ {
			if prev[v] < 0 {
				cur[v] = -1
			} else {
				cur[v] = prev[prev[v]]
			}
		}
		tr.up[k] = cur
	}
	return tr
}

// lca returns the lowest common ancestor of u and v (which must be in the
// same forest component).
func (t *treeResistance) lca(u, v int32) int32 {
	if t.depth[u] < t.depth[v] {
		u, v = v, u
	}
	diff := t.depth[u] - t.depth[v]
	for k := 0; diff != 0; k++ {
		if diff&1 != 0 {
			u = t.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return u
	}
	for k := len(t.up) - 1; k >= 0; k-- {
		if t.up[k][u] != t.up[k][v] {
			u = t.up[k][u]
			v = t.up[k][v]
		}
	}
	return t.up[0][u]
}

// Resistance returns the tree-path effective resistance between u and v.
func (t *treeResistance) Resistance(u, v int) float64 {
	a := t.lca(int32(u), int32(v))
	return t.res[u] + t.res[v] - 2*t.res[a]
}
