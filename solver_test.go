package powerrchol

import (
	"math"
	"testing"

	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

func TestSolverReusesFactorAcrossRHS(t *testing.T) {
	s, _, _ := testProblem(t)
	solver, err := NewSolver(s, Options{Method: MethodPowerRChol, Tol: 1e-10, MaxIter: 500})
	if err != nil {
		t.Fatal(err)
	}
	if solver.FactorNNZ() == 0 {
		t.Fatal("no factor reported")
	}
	r := rng.New(9)
	dense := s.ToCSC().Dense()
	for trial := 0; trial < 4; trial++ {
		b := make([]float64, s.N())
		for i := range b {
			b[i] = r.Float64() - 0.5
		}
		res, err := solver.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		want, err := testmat.DenseSolveSPD(dense, b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-6*(1+math.Abs(want[i])) {
				t.Fatalf("trial %d: x[%d] = %g, want %g", trial, i, res.X[i], want[i])
			}
		}
		if res.Timings.Reorder != 0 || res.Timings.Factorize != 0 {
			t.Fatal("per-solve timings must exclude setup")
		}
	}
	if st := solver.SetupTimings(); st.Reorder < 0 || st.Factorize <= 0 {
		t.Fatalf("setup timings not recorded: %+v", st)
	}
}

func TestSolverAllMethods(t *testing.T) {
	s, b, want := testProblem(t)
	for _, m := range []Method{
		MethodPowerRChol, MethodRChol, MethodLTRChol,
		MethodFeGRASS, MethodFeGRASSIChol, MethodAMG, MethodDirect, MethodJacobi, MethodSSOR,
	} {
		solver, err := NewSolver(s, Options{Method: m, Tol: 1e-10, MaxIter: 3000})
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		res, err := solver.Solve(b)
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-6 {
				t.Errorf("%v: wrong solution (Δ=%g)", m, math.Abs(res.X[i]-want[i]))
				break
			}
		}
	}
}

func TestSolverRejectsPowerRush(t *testing.T) {
	s, _, _ := testProblem(t)
	if _, err := NewSolver(s, Options{Method: MethodPowerRush}); err == nil {
		t.Fatal("MethodPowerRush accepted by NewSolver")
	}
}

func TestSolverDirectSolvesInOneIteration(t *testing.T) {
	s, b, _ := testProblem(t)
	solver, err := NewSolver(s, Options{Method: MethodDirect, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := solver.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations > 2 {
		t.Fatalf("complete-factor PCG took %d iterations", res.Iterations)
	}
}

func TestSolverValidatesRHS(t *testing.T) {
	s, _, _ := testProblem(t)
	solver, err := NewSolver(s, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.Solve(make([]float64, 1)); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}

func TestConditionEstimateOrdersPreconditioners(t *testing.T) {
	// A stronger preconditioner must yield a smaller estimated κ(M⁻¹A):
	// direct < powerrchol < jacobi.
	s, _, _ := testProblem(t)
	kappa := map[Method]float64{}
	for _, m := range []Method{MethodDirect, MethodPowerRChol, MethodJacobi} {
		solver, err := NewSolver(s, Options{Method: m, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		k, err := solver.ConditionEstimate(60)
		if err != nil {
			t.Fatal(err)
		}
		kappa[m] = k
	}
	t.Logf("κ estimates: direct=%.3g powerrchol=%.3g jacobi=%.3g",
		kappa[MethodDirect], kappa[MethodPowerRChol], kappa[MethodJacobi])
	if !(kappa[MethodDirect] < kappa[MethodPowerRChol]) ||
		!(kappa[MethodPowerRChol] < kappa[MethodJacobi]) {
		t.Fatalf("κ ordering violated: %v", kappa)
	}
	if kappa[MethodDirect] > 1.01 {
		t.Fatalf("κ(direct) = %g, want ~1", kappa[MethodDirect])
	}
}
