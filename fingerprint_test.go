package powerrchol

import (
	"math"
	"testing"

	"powerrchol/internal/testmat"
)

// Fingerprint API suite: the identity keys the pgserved prepared-factor
// cache hangs everything on. The contracts tested here — equal inputs
// hash equal, any solve-relevant difference hashes different, defaults
// normalize — are what make "fingerprint equal ⇒ bitwise
// interchangeable solver" safe to rely on.

func TestFingerprintVectorMatchesBits(t *testing.T) {
	a := []float64{1.0, -2.5, 0.0, math.Inf(1)}
	b := []float64{1.0, -2.5, 0.0, math.Inf(1)}
	if FingerprintVector(a) != FingerprintVector(b) {
		t.Fatal("bitwise-equal vectors fingerprint differently")
	}
	// Negative zero differs from positive zero in bits, so it must
	// differ in fingerprint: the hash is over bit patterns, not values.
	c := []float64{1.0, -2.5, math.Copysign(0, -1), math.Inf(1)}
	if FingerprintVector(a) == FingerprintVector(c) {
		t.Fatal("-0.0 and +0.0 fingerprint equal; hash is not over bit patterns")
	}
	if FingerprintVector(nil) != FingerprintVector([]float64{}) {
		t.Fatal("nil and empty vectors fingerprint differently")
	}
}

func TestFingerprintSystemIdentity(t *testing.T) {
	s1 := testmat.GridSDDM(12, 9)
	s2 := testmat.GridSDDM(12, 9)
	if FingerprintSystem(s1) != FingerprintSystem(s2) {
		t.Fatal("identical systems fingerprint differently")
	}
	if FingerprintSystem(s1) == FingerprintSystem(testmat.GridSDDM(12, 10)) {
		t.Fatal("different systems fingerprint equal")
	}
	// A weight perturbation below any display precision must still flip
	// the fingerprint: the hash reads the float bits.
	s3 := testmat.GridSDDM(12, 9)
	s3.G.Edges[0].W = math.Nextafter(s3.G.Edges[0].W, 2*s3.G.Edges[0].W)
	if FingerprintSystem(s1) == FingerprintSystem(s3) {
		t.Fatal("one-ulp weight change did not change the system fingerprint")
	}
	// The diagonal surplus is part of the identity too.
	s4 := testmat.GridSDDM(12, 9)
	s4.D[3] += 1e-9
	if FingerprintSystem(s1) == FingerprintSystem(s4) {
		t.Fatal("D change did not change the system fingerprint")
	}
}

func TestFingerprintNormalizesDefaults(t *testing.T) {
	s, _, _ := testProblem(t)
	zero := Fingerprint(s, Options{})
	explicit := Fingerprint(s, Options{Method: MethodPowerRChol, Tol: 1e-6, MaxIter: 500})
	if zero != explicit {
		t.Fatal("zero-value options and their explicit defaults fingerprint differently")
	}
	// Workers is excluded by contract: parallel kernels are bitwise
	// identical to serial, so the cache must coalesce across it.
	if zero != Fingerprint(s, Options{Workers: 8}) {
		t.Fatal("Workers changed the fingerprint; cache entries would needlessly split")
	}
}

func TestFingerprintSeparatesConfigurations(t *testing.T) {
	s, _, _ := testProblem(t)
	base := Options{Tol: 1e-8, Seed: 42}
	fp := Fingerprint(s, base)
	variants := []struct {
		label string
		opt   Options
	}{
		{"method", Options{Method: MethodRChol, Tol: 1e-8, Seed: 42}},
		{"seed", Options{Tol: 1e-8, Seed: 43}},
		{"tol", Options{Tol: 1e-9, Seed: 42}},
		{"ordering", Options{Ordering: OrderAMD, Tol: 1e-8, Seed: 42}},
		{"transform", Options{Transform: TransformFeGRASS, Tol: 1e-8, Seed: 42}},
		{"index", Options{CompactIndex: IndexCompact, Tol: 1e-8, Seed: 42}},
		{"retry", Options{Tol: 1e-8, Seed: 42, Retry: RetryPolicy{MaxAttempts: 3, Escalate: true}}},
	}
	for _, v := range variants {
		if Fingerprint(s, v.opt) == fp {
			t.Errorf("%s change did not change the fingerprint", v.label)
		}
	}
}

func TestSolverFingerprintMatchesPackageLevel(t *testing.T) {
	s, _, _ := testProblem(t)
	opt := Options{Tol: 1e-8, Seed: 42}
	solver, err := NewSolver(s, opt)
	if err != nil {
		t.Fatal(err)
	}
	if solver.Fingerprint() != Fingerprint(s, opt) {
		t.Fatal("Solver.Fingerprint disagrees with Fingerprint(sys, opt)")
	}
}

// TestMemoryBytesSharedFormula: the prepared solver's footprint and the
// one-shot Result's estimate must agree for the same configuration —
// that is the whole point of sharing solverMemoryBytes between the cache
// budget and the bench report.
func TestMemoryBytesSharedFormula(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, mode := range []IndexMode{IndexWide, IndexCompact} {
		opt := Options{Tol: 1e-8, Seed: 42, CompactIndex: mode}
		solver, err := NewSolver(s, opt)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Solve(s, b, opt)
		if err != nil {
			t.Fatal(err)
		}
		if solver.MemoryBytes() != res.MemoryBytes {
			t.Fatalf("mode %v: Solver.MemoryBytes %d != Result.MemoryBytes %d",
				mode, solver.MemoryBytes(), res.MemoryBytes)
		}
		if solver.MemoryBytes() <= 0 {
			t.Fatalf("mode %v: non-positive memory estimate %d", mode, solver.MemoryBytes())
		}
	}
	wide, err := NewSolver(s, Options{Tol: 1e-8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	compact, err := NewSolver(s, Options{Tol: 1e-8, Seed: 42, CompactIndex: IndexCompact})
	if err != nil {
		t.Fatal(err)
	}
	if compact.MemoryBytes() >= wide.MemoryBytes() {
		t.Fatalf("compact index storage did not shrink the footprint: %d >= %d",
			compact.MemoryBytes(), wide.MemoryBytes())
	}
}
