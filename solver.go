package powerrchol

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"powerrchol/internal/amg"
	"powerrchol/internal/chol"
	"powerrchol/internal/core"
	"powerrchol/internal/fegrass"
	"powerrchol/internal/graph"
	"powerrchol/internal/ichol"
	"powerrchol/internal/order"
	"powerrchol/internal/pcg"
	"powerrchol/internal/sparse"
)

// Solver is a prepared solver: the reordering and preconditioner are
// built once and then amortized over many right-hand sides — the shape of
// real power-grid analysis, where one conductance matrix is solved for
// many load patterns (or many transient time steps).
//
// After NewSolver returns, the Solver is read-only: Solve, SolveFrom and
// SolveBatch are safe to call from multiple goroutines concurrently.
// Batch workloads should prefer SolveBatch, which fans right-hand sides
// across a bounded worker pool while keeping every individual solve
// bitwise identical to the serial Solve path.
type Solver struct {
	opt Options
	sys *graph.SDDM
	a   *sparse.CSC
	m   pcg.Preconditioner

	setupReorder   time.Duration
	setupFactorize time.Duration
	factorNNZ      int
}

// NewSolver validates the system and builds the preconditioner for the
// method selected in opt. MethodPowerRush is not supported here (its
// contraction changes the unknowns; use Solve) and MethodDirect is
// supported (Apply is an exact solve, so PCG converges in one iteration).
func NewSolver(sys *graph.SDDM, opt Options) (*Solver, error) {
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 500
	}
	s := &Solver{opt: opt, sys: sys}

	t0 := time.Now()
	var perm []int
	switch opt.Method {
	case MethodPowerRChol:
		perm = buildOrdering(sys, orderOr(opt.Ordering, OrderAlg4), opt.HeavyFactor)
	case MethodRChol, MethodLTRChol, MethodDirect:
		perm = buildOrdering(sys, orderOr(opt.Ordering, OrderAMD), opt.HeavyFactor)
	}
	s.setupReorder = time.Since(t0)

	t0 = time.Now()
	var err error
	switch opt.Method {
	case MethodPowerRChol, MethodLTRChol, MethodRChol:
		variant := core.VariantLT
		if opt.Method == MethodRChol {
			variant = core.VariantRChol
		}
		var f *core.Factor
		f, err = core.Factorize(sys, perm, core.Options{
			Variant: variant, Buckets: opt.Buckets, Seed: opt.Seed, Samples: opt.Samples,
		})
		if err == nil {
			s.m = f
			s.factorNNZ = f.NNZ()
		}
	case MethodFeGRASS, MethodFeGRASSIChol:
		frac := opt.RecoverFrac
		if frac == 0 {
			if opt.Method == MethodFeGRASSIChol {
				frac = fegrass.IcholRecoverFrac
			} else {
				frac = fegrass.DefaultRecoverFrac
			}
		}
		var sp *graph.SDDM
		sp, err = fegrass.Sparsify(sys, frac)
		if err == nil {
			sperm := order.AMD(sp.G)
			var f *core.Factor
			if opt.Method == MethodFeGRASSIChol {
				f, err = ichol.Factorize(sp.ToCSC(), sperm, ichol.Options{DropTol: opt.DropTol})
			} else {
				f, err = chol.Factorize(sp.ToCSC(), sperm)
			}
			if err == nil {
				s.m = f
				s.factorNNZ = f.NNZ()
			}
		}
	case MethodDirect:
		var f *core.Factor
		f, err = chol.Factorize(sys.ToCSC(), perm)
		if err == nil {
			s.m = f
			s.factorNNZ = f.NNZ()
		}
	case MethodAMG:
		s.a = sys.ToCSC()
		var p *amg.Preconditioner
		p, err = amg.New(s.a, amg.Options{})
		if err == nil {
			s.m = p
		}
	case MethodJacobi:
		s.a = sys.ToCSC()
		s.m, err = pcg.NewJacobi(s.a)
	case MethodSSOR:
		s.a = sys.ToCSC()
		s.m, err = pcg.NewSSOR(s.a, 0)
	case MethodPowerRush:
		err = fmt.Errorf("powerrchol: MethodPowerRush contracts the system; use Solve instead of NewSolver")
	default:
		err = fmt.Errorf("powerrchol: unknown method %v", opt.Method)
	}
	if err != nil {
		return nil, err
	}
	s.setupFactorize = time.Since(t0)
	if s.a == nil {
		s.a = sys.ToCSC()
	}
	// Level-schedule the triangular solves so Apply can run them across
	// goroutines. The parallel solves are bitwise identical to the serial
	// ones, so this never changes results (see determinism tests).
	if opt.Workers > 1 {
		if f, ok := s.m.(*core.Factor); ok {
			f.Parallelize(opt.Workers)
		}
	}
	return s, nil
}

func orderOr(o, def Ordering) Ordering {
	if o == OrderDefault {
		return def
	}
	return o
}

// SetupTimings reports the one-time reorder and factorization cost.
func (s *Solver) SetupTimings() Timings {
	return Timings{Reorder: s.setupReorder, Factorize: s.setupFactorize}
}

// FactorNNZ reports |L| (0 for AMG/Jacobi).
func (s *Solver) FactorNNZ() int { return s.factorNNZ }

// Solve runs PCG for one right-hand side, reusing the prepared
// preconditioner. The returned Result's Timings contain only the
// iteration time (setup is reported once by SetupTimings).
func (s *Solver) Solve(b []float64) (*Result, error) {
	if len(b) != s.sys.N() {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), s.sys.N())
	}
	res := &Result{FactorNNZ: s.factorNNZ}
	t0 := time.Now()
	pres, err := pcg.Solve(s.a, b, s.m, pcg.Options{Tol: s.opt.Tol, MaxIter: s.opt.MaxIter})
	if err != nil {
		return nil, err
	}
	res.Timings.Iterate = time.Since(t0)
	fill(res, pres)
	if !res.Converged {
		return res, ErrNotConverged
	}
	return res, nil
}

// SolveFrom is Solve with a warm start: PCG begins at x0 instead of
// zero. Across transient time steps, where consecutive solutions differ
// little, this typically saves a third or more of the iterations.
func (s *Solver) SolveFrom(b, x0 []float64) (*Result, error) {
	if len(b) != s.sys.N() {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), s.sys.N())
	}
	res := &Result{FactorNNZ: s.factorNNZ}
	t0 := time.Now()
	pres, err := pcg.SolveFrom(s.a, b, x0, s.m, pcg.Options{Tol: s.opt.Tol, MaxIter: s.opt.MaxIter})
	if err != nil {
		return nil, err
	}
	res.Timings.Iterate = time.Since(t0)
	fill(res, pres)
	if !res.Converged {
		return res, ErrNotConverged
	}
	return res, nil
}

// ConditionEstimate runs a short preconditioned Lanczos process and
// returns an estimate of κ(M⁻¹A), the condition number governing PCG
// convergence. It is a diagnostic, accurate to a few percent for the
// extreme eigenvalues after ~30 iterations on the matrices in this
// repository.
func (s *Solver) ConditionEstimate(iters int) (float64, error) {
	return pcg.ConditionEstimate(s.a, s.m, iters, s.opt.Seed)
}

// BatchWorkers reports the worker-pool size SolveBatch will use:
// Options.Workers if set, otherwise runtime.NumCPU().
func (s *Solver) BatchWorkers() int {
	if s.opt.Workers > 0 {
		return s.opt.Workers
	}
	return runtime.NumCPU()
}

// SolveBatch solves the system against every right-hand side in rhs,
// fanning the solves across a bounded worker pool of BatchWorkers()
// goroutines. This is the paper's target workload — one conductance
// matrix against many load patterns — parallelized across patterns,
// where the amortized preconditioner gives near-linear scaling without
// any cross-solve synchronization beyond the shared read-only factor.
//
// Each solve runs exactly the serial Solve path (the parallel triangular
// solves enabled by Options.Workers are bitwise identical to the serial
// ones), so results[i] equals the Result of Solve(rhs[i]) bit for bit,
// for every worker count. No randomness is consumed: the factorization
// seed is spent in NewSolver and never leaks into the solve phase.
//
// The returned slice always has len(rhs) entries. If any solve fails,
// the error of the lowest-indexed failure is returned; entries that
// failed with ErrNotConverged still carry their partial Result, other
// failures leave a nil entry.
func (s *Solver) SolveBatch(rhs [][]float64) ([]*Result, error) {
	n := s.sys.N()
	for i, b := range rhs {
		if len(b) != n {
			return nil, fmt.Errorf("powerrchol: rhs[%d] has length %d, want %d", i, len(b), n)
		}
	}
	results := make([]*Result, len(rhs))
	errs := make([]error, len(rhs))
	if len(rhs) == 0 {
		return results, nil
	}

	workers := s.BatchWorkers()
	if workers > len(rhs) {
		workers = len(rhs)
	}
	if workers < 1 {
		workers = 1
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = s.Solve(rhs[i])
			}
		}()
	}
	for i := range rhs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}
