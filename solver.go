package powerrchol

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"time"

	"powerrchol/internal/graph"
	"powerrchol/internal/pcg"
	"powerrchol/internal/pipeline"
	"powerrchol/internal/sparse"
)

// Solver is a prepared solver: the reordering and preconditioner are
// built once and then amortized over many right-hand sides — the shape of
// real power-grid analysis, where one conductance matrix is solved for
// many load patterns (or many transient time steps).
//
// After NewSolver returns, the Solver is read-only: Solve, SolveFrom and
// SolveBatch are safe to call from multiple goroutines concurrently.
// Batch workloads should prefer SolveBatch, which fans right-hand sides
// across a bounded worker pool while keeping every individual solve
// bitwise identical to the serial Solve path.
//
// Recovery: with Options.Retry enabled, a randomized factorization that
// breaks down during NewSolver is retried with reseeds and (with
// Escalate) walked down the LT-RChol → RChol → direct Cholesky ladder;
// the trail is available from SetupAttempts. Because the Solver is
// immutable after construction, solve-time failures (indefiniteness,
// stagnation) are detected and reported with typed errors but not
// refactorized in place — use the one-shot SolveContext for the full
// solve-time ladder.
type Solver struct {
	opt Options
	sys *graph.SDDM
	// The assembled iteration matrix, in exactly one storage: wide (a)
	// or compact int32 (a32) per Options.CompactIndex. The two multiply
	// to identical bits, so the width is invisible to solve results.
	a   *sparse.CSC
	a32 *sparse.CSC32
	m   pcg.Preconditioner
	// exact marks a preconditioner that solves the system exactly
	// (complete Cholesky with no sparsifying transform in the way):
	// Solve applies it once instead of iterating.
	exact bool

	setupReorder     time.Duration
	setupFactorize   time.Duration
	factorNNZ        int
	factorIndexBytes int
	setupAttempts    []Attempt
	fingerprint      uint64
}

// NewSolver validates the system and builds the preconditioner for the
// method selected in opt, running the same setup pipeline as the
// one-shot Solve. Contraction-bearing plans — MethodPowerRush, or any
// method under TransformMerge — are not supported here (the contraction
// changes the unknowns; use Solve). MethodDirect is supported: its
// complete factor makes every Solve a single exact apply.
func NewSolver(sys *graph.SDDM, opt Options) (*Solver, error) {
	return NewSolverContext(context.Background(), sys, opt)
}

// NewSolverContext is NewSolver under a context: a cancelled or expired
// ctx aborts the setup pipeline (transform, ordering and factorization
// all poll it) promptly.
func NewSolverContext(ctx context.Context, sys *graph.SDDM, opt Options) (*Solver, error) {
	plan, err := CompilePlan(opt)
	if err != nil {
		return nil, err
	}
	return NewSolverFromPlan(ctx, sys, plan)
}

// SolverPlan is a compiled solver configuration: the validated options
// plus the pipeline's resolved method registry entry and recovery-ladder
// rung layout, independent of any particular system. Compile once,
// prepare many — the Monte Carlo workload shape, where every perturbed
// sample shares one configuration. A SolverPlan is immutable and safe
// for concurrent use.
type SolverPlan struct {
	opt  Options
	plan *pipeline.Plan
}

// Options returns the validated (default-normalized) options the plan
// was compiled from.
func (p *SolverPlan) Options() Options { return p.opt }

// CompilePlan validates opt and resolves it against the method registry
// once, for reuse across many NewSolverFromPlan calls. Plans reject the
// same configurations NewSolver would (contraction-bearing transforms).
func CompilePlan(opt Options) (*SolverPlan, error) {
	if err := opt.validate(); err != nil {
		return nil, err
	}
	plan, err := pipeline.Compile(opt.pipelineConfig(true))
	if err != nil {
		return nil, err
	}
	return &SolverPlan{opt: opt, plan: plan}, nil
}

// NewSolverFromPlan builds a prepared solver for sys from a compiled
// plan, skipping the per-call registry resolution. Identical in every
// observable way to NewSolverContext with the plan's options.
func NewSolverFromPlan(ctx context.Context, sys *graph.SDDM, plan *SolverPlan) (*Solver, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt := plan.opt
	r := plan.plan.NewRunner(sys)
	setup, err := r.Next(ctx)
	if err != nil {
		if ctxDone(err) || !r.Ladder() {
			return nil, err
		}
		return nil, &SolveError{Attempts: r.Trail(), Last: err}
	}
	a := setup.Sys.ToCSC()
	var a32 *sparse.CSC32
	if opt.CompactIndex != IndexWide {
		c, cerr := sparse.CompactCSC(a)
		switch {
		case cerr == nil:
			a, a32 = nil, c
		case opt.CompactIndex == IndexCompact:
			return nil, cerr
		}
		// IndexAuto past the boundary: keep the wide matrix.
	}
	return &Solver{
		opt:              opt,
		sys:              sys,
		a:                a,
		a32:              a32,
		m:                setup.M,
		exact:            setup.Exact,
		setupReorder:     setup.Reorder,
		setupFactorize:   setup.Factorize,
		factorNNZ:        setup.FactorNNZ,
		factorIndexBytes: setup.FactorIndexBytes,
		setupAttempts:    r.Succeed(0, 0),
		fingerprint:      Fingerprint(sys, opt),
	}, nil
}

// SetupTimings reports the one-time reorder and factorization cost.
func (s *Solver) SetupTimings() Timings {
	return Timings{Reorder: s.setupReorder, Factorize: s.setupFactorize}
}

// N reports the system dimension (the length Solve expects of b).
func (s *Solver) N() int { return s.sys.N() }

// FactorNNZ reports |L| (0 for AMG/Jacobi).
func (s *Solver) FactorNNZ() int { return s.factorNNZ }

// FactorIndexBytes reports the factor's index-array footprint in bytes
// (column pointers + row indices) — halved by the compact index modes;
// 0 for the matrix-free preconditioners.
func (s *Solver) FactorIndexBytes() int { return s.factorIndexBytes }

// MemoryBytes reports the retained footprint of the prepared solver in
// bytes: factor values and index arrays, the assembled iteration matrix
// (values plus indices), and the scratch vectors one solve draws from the
// shared pools. It is the eviction weight of the pgserved prepared-factor
// cache and the memory_bytes column of the pgbench trajectory — one
// formula (solverMemoryBytes) for both, so the budget the service
// enforces is the number the benchmarks report. Matrix-free
// preconditioners (AMG, Jacobi, SSOR) contribute only their iteration
// matrix and scratch; their hierarchy/diagonal storage is not counted.
func (s *Solver) MemoryBytes() int {
	matNNZ, matIdx := 0, 0
	switch {
	case s.a32 != nil:
		matNNZ, matIdx = s.a32.NNZ(), s.a32.IndexBytes()
	case s.a != nil:
		matNNZ, matIdx = s.a.NNZ(), s.a.IndexBytes()
	}
	return solverMemoryBytes(s.sys.N(), matNNZ, matIdx, s.factorNNZ, s.factorIndexBytes)
}

// SetupAttempts returns the recovery-ladder trail of NewSolver for the
// randomized methods: one entry per factorization attempt, failures
// first. Empty when recovery is disabled and the first attempt
// succeeded. The returned slice is shared; callers must not mutate it.
func (s *Solver) SetupAttempts() []Attempt { return s.setupAttempts }

// Solve runs PCG for one right-hand side, reusing the prepared
// preconditioner. The returned Result's Timings contain only the
// iteration time (setup is reported once by SetupTimings).
func (s *Solver) Solve(b []float64) (*Result, error) {
	return s.SolveContext(context.Background(), b)
}

// SolveContext is Solve under a context: a cancelled or expired ctx
// aborts the PCG iteration promptly, returning the best iterate found
// with an error wrapping context.Canceled or context.DeadlineExceeded.
func (s *Solver) SolveContext(ctx context.Context, b []float64) (*Result, error) {
	return s.solveContext(ctx, b, nil)
}

// SolveFrom is Solve with a warm start: PCG begins at x0 instead of
// zero. Across transient time steps, where consecutive solutions differ
// little, this typically saves a third or more of the iterations.
func (s *Solver) SolveFrom(b, x0 []float64) (*Result, error) {
	return s.SolveFromContext(context.Background(), b, x0)
}

// SolveFromContext is SolveFrom under a context. A nil x0 is a cold
// start, identical to SolveContext.
func (s *Solver) SolveFromContext(ctx context.Context, b, x0 []float64) (*Result, error) {
	return s.solveContext(ctx, b, x0)
}

func (s *Solver) solveContext(ctx context.Context, b, x0 []float64) (*Result, error) {
	if len(b) != s.sys.N() {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), s.sys.N())
	}
	res := &Result{FactorNNZ: s.factorNNZ}
	if s.exact {
		// The factor solves the system exactly: one apply, no iteration
		// (and no use for a warm start).
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return res, err
			}
		}
		t0 := time.Now()
		x := make([]float64, s.sys.N())
		s.m.Apply(x, b)
		res.Timings.Iterate = time.Since(t0)
		res.X = x
		res.Converged = true
		res.Residual = relativeResidual(s.sys, x, b)
		return res, nil
	}
	popt := s.opt.pcgOptions(ctx, 0)
	t0 := time.Now()
	var pres *pcg.Result
	var err error
	switch {
	case s.a32 != nil && x0 == nil:
		pres, err = pcg.SolveOp(s.sys.N(), s.a32.MulVec, b, s.m, popt)
	case s.a32 != nil:
		pres, err = pcg.SolveFromOp(s.sys.N(), s.a32.MulVec, b, x0, s.m, popt)
	case x0 == nil:
		pres, err = pcg.Solve(s.a, b, s.m, popt)
	default:
		pres, err = pcg.SolveFrom(s.a, b, x0, s.m, popt)
	}
	res.Timings.Iterate = time.Since(t0)
	if pres != nil {
		fill(res, pres)
	}
	if err != nil {
		return res, err
	}
	if !res.Converged {
		return res, notConverged(s.opt, res)
	}
	return res, nil
}

// ConditionEstimate runs a short preconditioned Lanczos process and
// returns an estimate of κ(M⁻¹A), the condition number governing PCG
// convergence. It is a diagnostic, accurate to a few percent for the
// extreme eigenvalues after ~30 iterations on the matrices in this
// repository.
func (s *Solver) ConditionEstimate(iters int) (float64, error) {
	if s.a32 != nil {
		return pcg.ConditionEstimateOp(s.sys.N(), s.a32.MulVec, s.m, iters, s.opt.Seed)
	}
	return pcg.ConditionEstimate(s.a, s.m, iters, s.opt.Seed)
}

// BatchWorkers reports the worker-pool size SolveBatch will use:
// Options.Workers if set, otherwise runtime.NumCPU().
func (s *Solver) BatchWorkers() int {
	if s.opt.Workers > 0 {
		return s.opt.Workers
	}
	return runtime.NumCPU()
}

// SolveBatch solves the system against every right-hand side in rhs,
// fanning the solves across a bounded worker pool of BatchWorkers()
// goroutines. This is the paper's target workload — one conductance
// matrix against many load patterns — parallelized across patterns,
// where the amortized preconditioner gives near-linear scaling without
// any cross-solve synchronization beyond the shared read-only factor.
//
// Each solve runs exactly the serial Solve path (the parallel triangular
// solves enabled by Options.Workers are bitwise identical to the serial
// ones), so results[i] equals the Result of Solve(rhs[i]) bit for bit,
// for every worker count. No randomness is consumed: the factorization
// seed is spent in NewSolver and never leaks into the solve phase.
//
// The returned slice always has len(rhs) entries. One bad right-hand
// side (say, a NaN entry) fails only its own solve: the others complete
// normally. If any solve fails, the error is a *BatchError whose Errs
// slice reports each failure at its index; errors.Is/As on it reach the
// lowest-indexed failure. Entries that failed with ErrNotConverged
// still carry their partial Result, other failures leave a nil entry.
func (s *Solver) SolveBatch(rhs [][]float64) ([]*Result, error) {
	return s.SolveBatchContext(context.Background(), rhs)
}

// SolveBatchContext is SolveBatch under a context. A cancelled or
// expired ctx stops dispatching new solves and aborts the in-flight
// ones promptly; right-hand sides that never ran report the context
// error in the BatchError.
func (s *Solver) SolveBatchContext(ctx context.Context, rhs [][]float64) ([]*Result, error) {
	n := s.sys.N()
	for i, b := range rhs {
		if len(b) != n {
			return nil, fmt.Errorf("powerrchol: rhs[%d] has length %d, want %d", i, len(b), n)
		}
	}
	results := make([]*Result, len(rhs))
	errs := make([]error, len(rhs))
	if len(rhs) == 0 {
		return results, nil
	}
	if ctx == nil {
		ctx = context.Background()
	}

	workers := s.BatchWorkers()
	if workers > len(rhs) {
		workers = len(rhs)
	}
	if workers < 1 {
		workers = 1
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = s.SolveContext(ctx, rhs[i])
			}
		}()
	}
dispatch:
	for i := range rhs {
		select {
		case jobs <- i:
		case <-ctx.Done():
			// Mark everything not yet dispatched; in-flight solves see the
			// same cancellation through their per-iteration context checks.
			for j := i; j < len(rhs); j++ {
				errs[j] = ctx.Err()
			}
			break dispatch
		}
	}
	close(jobs)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return results, &BatchError{Errs: errs}
		}
	}
	return results, nil
}
