package powerrchol

import (
	"fmt"
	"time"

	"powerrchol/internal/amg"
	"powerrchol/internal/chol"
	"powerrchol/internal/core"
	"powerrchol/internal/fegrass"
	"powerrchol/internal/graph"
	"powerrchol/internal/ichol"
	"powerrchol/internal/order"
	"powerrchol/internal/pcg"
	"powerrchol/internal/sparse"
)

// Solver is a prepared solver: the reordering and preconditioner are
// built once and then amortized over many right-hand sides — the shape of
// real power-grid analysis, where one conductance matrix is solved for
// many load patterns (or many transient time steps).
type Solver struct {
	opt Options
	sys *graph.SDDM
	a   *sparse.CSC
	m   pcg.Preconditioner

	setupReorder   time.Duration
	setupFactorize time.Duration
	factorNNZ      int
}

// NewSolver validates the system and builds the preconditioner for the
// method selected in opt. MethodPowerRush is not supported here (its
// contraction changes the unknowns; use Solve) and MethodDirect is
// supported (Apply is an exact solve, so PCG converges in one iteration).
func NewSolver(sys *graph.SDDM, opt Options) (*Solver, error) {
	if opt.Tol == 0 {
		opt.Tol = 1e-6
	}
	if opt.MaxIter == 0 {
		opt.MaxIter = 500
	}
	s := &Solver{opt: opt, sys: sys}

	t0 := time.Now()
	var perm []int
	switch opt.Method {
	case MethodPowerRChol:
		perm = buildOrdering(sys, orderOr(opt.Ordering, OrderAlg4), opt.HeavyFactor)
	case MethodRChol, MethodLTRChol, MethodDirect:
		perm = buildOrdering(sys, orderOr(opt.Ordering, OrderAMD), opt.HeavyFactor)
	}
	s.setupReorder = time.Since(t0)

	t0 = time.Now()
	var err error
	switch opt.Method {
	case MethodPowerRChol, MethodLTRChol, MethodRChol:
		variant := core.VariantLT
		if opt.Method == MethodRChol {
			variant = core.VariantRChol
		}
		var f *core.Factor
		f, err = core.Factorize(sys, perm, core.Options{
			Variant: variant, Buckets: opt.Buckets, Seed: opt.Seed, Samples: opt.Samples,
		})
		if err == nil {
			s.m = f
			s.factorNNZ = f.NNZ()
		}
	case MethodFeGRASS, MethodFeGRASSIChol:
		frac := opt.RecoverFrac
		if frac == 0 {
			if opt.Method == MethodFeGRASSIChol {
				frac = fegrass.IcholRecoverFrac
			} else {
				frac = fegrass.DefaultRecoverFrac
			}
		}
		var sp *graph.SDDM
		sp, err = fegrass.Sparsify(sys, frac)
		if err == nil {
			sperm := order.AMD(sp.G)
			var f *core.Factor
			if opt.Method == MethodFeGRASSIChol {
				f, err = ichol.Factorize(sp.ToCSC(), sperm, ichol.Options{DropTol: opt.DropTol})
			} else {
				f, err = chol.Factorize(sp.ToCSC(), sperm)
			}
			if err == nil {
				s.m = f
				s.factorNNZ = f.NNZ()
			}
		}
	case MethodDirect:
		var f *core.Factor
		f, err = chol.Factorize(sys.ToCSC(), perm)
		if err == nil {
			s.m = f
			s.factorNNZ = f.NNZ()
		}
	case MethodAMG:
		s.a = sys.ToCSC()
		var p *amg.Preconditioner
		p, err = amg.New(s.a, amg.Options{})
		if err == nil {
			s.m = p
		}
	case MethodJacobi:
		s.a = sys.ToCSC()
		s.m, err = pcg.NewJacobi(s.a)
	case MethodSSOR:
		s.a = sys.ToCSC()
		s.m, err = pcg.NewSSOR(s.a, 0)
	case MethodPowerRush:
		err = fmt.Errorf("powerrchol: MethodPowerRush contracts the system; use Solve instead of NewSolver")
	default:
		err = fmt.Errorf("powerrchol: unknown method %v", opt.Method)
	}
	if err != nil {
		return nil, err
	}
	s.setupFactorize = time.Since(t0)
	if s.a == nil {
		s.a = sys.ToCSC()
	}
	return s, nil
}

func orderOr(o, def Ordering) Ordering {
	if o == OrderDefault {
		return def
	}
	return o
}

// SetupTimings reports the one-time reorder and factorization cost.
func (s *Solver) SetupTimings() Timings {
	return Timings{Reorder: s.setupReorder, Factorize: s.setupFactorize}
}

// FactorNNZ reports |L| (0 for AMG/Jacobi).
func (s *Solver) FactorNNZ() int { return s.factorNNZ }

// Solve runs PCG for one right-hand side, reusing the prepared
// preconditioner. The returned Result's Timings contain only the
// iteration time (setup is reported once by SetupTimings).
func (s *Solver) Solve(b []float64) (*Result, error) {
	if len(b) != s.sys.N() {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), s.sys.N())
	}
	res := &Result{FactorNNZ: s.factorNNZ}
	t0 := time.Now()
	pres, err := pcg.Solve(s.a, b, s.m, pcg.Options{Tol: s.opt.Tol, MaxIter: s.opt.MaxIter})
	if err != nil {
		return nil, err
	}
	res.Timings.Iterate = time.Since(t0)
	fill(res, pres)
	if !res.Converged {
		return res, ErrNotConverged
	}
	return res, nil
}

// SolveFrom is Solve with a warm start: PCG begins at x0 instead of
// zero. Across transient time steps, where consecutive solutions differ
// little, this typically saves a third or more of the iterations.
func (s *Solver) SolveFrom(b, x0 []float64) (*Result, error) {
	if len(b) != s.sys.N() {
		return nil, fmt.Errorf("powerrchol: rhs has length %d, want %d", len(b), s.sys.N())
	}
	res := &Result{FactorNNZ: s.factorNNZ}
	t0 := time.Now()
	pres, err := pcg.SolveFrom(s.a, b, x0, s.m, pcg.Options{Tol: s.opt.Tol, MaxIter: s.opt.MaxIter})
	if err != nil {
		return nil, err
	}
	res.Timings.Iterate = time.Since(t0)
	fill(res, pres)
	if !res.Converged {
		return res, ErrNotConverged
	}
	return res, nil
}

// ConditionEstimate runs a short preconditioned Lanczos process and
// returns an estimate of κ(M⁻¹A), the condition number governing PCG
// convergence. It is a diagnostic, accurate to a few percent for the
// extreme eigenvalues after ~30 iterations on the matrices in this
// repository.
func (s *Solver) ConditionEstimate(iters int) (float64, error) {
	return pcg.ConditionEstimate(s.a, s.m, iters, s.opt.Seed)
}
