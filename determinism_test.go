package powerrchol

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// Determinism regression suite. The contract: all randomness is spent at
// factorization time (NewSolver), seeded by Options.Seed; the solve
// phase consumes no RNG state, and the worker count never changes
// results — parallel triangular solves and batch fan-out are bitwise
// equivalent to the serial path.

// TestSolveBatchDeterministicAcrossWorkers: with a fixed seed, the batch
// results must be bit-identical for every Workers setting.
func TestSolveBatchDeterministicAcrossWorkers(t *testing.T) {
	s, _, _ := testProblem(t)
	rhs := batchRHS(s.N(), 5, 77)
	for _, m := range []Method{MethodPowerRChol, MethodRChol, MethodAMG, MethodFeGRASSIChol} {
		var ref []*Result
		for _, workers := range []int{1, 2, 4, 8} {
			solver, err := NewSolver(s, Options{Method: m, Tol: 1e-8, Seed: 42, Workers: workers})
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, workers, err)
			}
			got, err := solver.SolveBatch(rhs)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", m, workers, err)
			}
			if ref == nil {
				ref = got
				continue
			}
			for i := range got {
				if got[i].Iterations != ref[i].Iterations {
					t.Errorf("%v workers=%d: rhs %d took %d iterations, workers=1 took %d",
						m, workers, i, got[i].Iterations, ref[i].Iterations)
				}
				for j := range got[i].X {
					if math.Float64bits(got[i].X[j]) != math.Float64bits(ref[i].X[j]) {
						t.Fatalf("%v workers=%d: rhs %d not bit-identical to workers=1 at index %d (%v vs %v)",
							m, workers, i, j, got[i].X[j], ref[i].X[j])
					}
				}
			}
		}
	}
}

// TestSeedStateGolden pins the exact seed → result mapping of every
// seed-consuming composition to a golden file: the pipeline refactor
// contract is that moving setup between front-ends never changes what a
// seed produces. Fingerprints are bit-exact and generated on the CI
// architecture; regenerate with `go test -run TestSeedStateGolden
// -update .` after an intentional change to the sampling or ordering
// streams (and say so in the commit).
func TestSeedStateGolden(t *testing.T) {
	s, b, _ := testProblem(t)
	configs := []struct {
		label string
		opt   Options
	}{
		{"powerrchol/seed=42", Options{Method: MethodPowerRChol, Tol: 1e-8, Seed: 42}},
		{"powerrchol/seed=43", Options{Method: MethodPowerRChol, Tol: 1e-8, Seed: 43}},
		{"rchol/seed=42", Options{Method: MethodRChol, Tol: 1e-8, Seed: 42}},
		{"lt-rchol/seed=42", Options{Method: MethodLTRChol, Tol: 1e-8, Seed: 42}},
		{"lt-rchol+fegrass/seed=42", Options{Method: MethodLTRChol, Transform: TransformFeGRASS, Tol: 1e-8, Seed: 42}},
		{"powerrchol+merge/seed=42", Options{Method: MethodPowerRChol, Transform: TransformMerge, Tol: 1e-8, Seed: 42}},
		{"powerrchol+retry/seed=42", Options{Method: MethodPowerRChol, Tol: 1e-8, Seed: 42,
			Retry: RetryPolicy{MaxAttempts: 4, Escalate: true}}},
	}
	var lines []string
	for _, c := range configs {
		res, err := Solve(s, b, c.opt)
		if err != nil {
			t.Fatalf("%s: %v", c.label, err)
		}
		// The public fingerprint API is the hash this golden pins: the
		// same FNV-64a-over-float-bits the pgserved soak referee uses.
		lines = append(lines, fmt.Sprintf("%s nnz=%d iters=%d xbits=%016x",
			c.label, res.FactorNNZ, res.Iterations, FingerprintVector(res.X)))
	}
	got := strings.Join(lines, "\n") + "\n"
	golden := filepath.Join("testdata", "seedstate.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (generate with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("seed-state fingerprints changed — the refactor altered what a seed produces.\n got:\n%s\nwant:\n%s", got, want)
	}
}

// TestFactorizationSeedIsReproducible: the same seed must produce the
// same factor (|L| and solve trajectory), for both randomized variants.
func TestFactorizationSeedIsReproducible(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, m := range []Method{MethodPowerRChol, MethodRChol} {
		s1, err := NewSolver(s, Options{Method: m, Tol: 1e-8, Seed: 123})
		if err != nil {
			t.Fatal(err)
		}
		s2, err := NewSolver(s, Options{Method: m, Tol: 1e-8, Seed: 123})
		if err != nil {
			t.Fatal(err)
		}
		if s1.FactorNNZ() != s2.FactorNNZ() {
			t.Fatalf("%v: same seed, different |L|: %d vs %d", m, s1.FactorNNZ(), s2.FactorNNZ())
		}
		r1, err := s1.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Iterations != r2.Iterations {
			t.Fatalf("%v: same seed, different iteration counts: %d vs %d", m, r1.Iterations, r2.Iterations)
		}
		assertBitwise(t, "same-seed solve", r1.X, r2.X)
	}
}

// TestRepeatedSolveIsStateless: solving the same rhs twice on one solver
// must give the exact same answer — Apply's pooled scratch must not let
// one call's state leak into the next.
func TestRepeatedSolveIsStateless(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, m := range batchMethods {
		solver, err := NewSolver(s, Options{Method: m, Tol: 1e-8, MaxIter: 3000, Seed: 9})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		r1, err := solver.Solve(b)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		r2, err := solver.Solve(b)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if r1.Iterations != r2.Iterations {
			t.Fatalf("%v: repeated solve changed iteration count: %d vs %d", m, r1.Iterations, r2.Iterations)
		}
		assertBitwise(t, m.String()+" repeated solve", r1.X, r2.X)
	}
}
