// Command pgverify independently checks a voltage solution against its
// netlist: it rebuilds the nodal equations and reports the residual and
// the worst Kirchhoff-current-law violation per node, the way power-grid
// benchmark golden solutions are validated.
//
//	pgverify -netlist grid.sp -solution grid.solution [-tol 1e-4]
//
// Exit status is nonzero when the worst KCL violation exceeds -tol.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"powerrchol/internal/powergrid"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pgverify:", err)
		os.Exit(1)
	}
}

func run() error {
	netlistPath := flag.String("netlist", "", "IBM-format SPICE netlist")
	solutionPath := flag.String("solution", "", "voltage solution file to verify")
	tol := flag.Float64("tol", 1e-4, "maximum allowed per-node KCL current violation (A)")
	flag.Parse()
	if *netlistPath == "" || *solutionPath == "" {
		flag.Usage()
		return fmt.Errorf("both -netlist and -solution are required")
	}

	nf, err := os.Open(*netlistPath)
	if err != nil {
		return err
	}
	defer nf.Close()
	nl, err := powergrid.Parse(nf)
	if err != nil {
		return err
	}
	sf, err := os.Open(*solutionPath)
	if err != nil {
		return err
	}
	defer sf.Close()
	sol, err := powergrid.ReadSolution(sf)
	if err != nil {
		return err
	}

	sys, err := nl.BuildSystem()
	if err != nil {
		return err
	}
	// voltage vector over unknowns, from the solution file
	v := make([]float64, len(sys.Unknown))
	missing := 0
	for i, node := range sys.Unknown {
		val, ok := sol[nl.NodeName(node)]
		if !ok {
			missing++
			continue
		}
		v[i] = val
	}
	if missing > 0 {
		return fmt.Errorf("%d of %d unknown nodes missing from the solution file", missing, len(v))
	}

	// KCL residual r = G·v - b; each entry is the net current error at a node.
	y := make([]float64, len(v))
	sys.Sys.MulVec(y, v)
	worst, worstIdx := 0.0, -1
	var norm2, bnorm2 float64
	for i := range y {
		r := y[i] - sys.B[i]
		norm2 += r * r
		bnorm2 += sys.B[i] * sys.B[i]
		if a := math.Abs(r); a > worst {
			worst, worstIdx = a, i
		}
	}
	rel := 0.0
	if bnorm2 > 0 {
		rel = math.Sqrt(norm2 / bnorm2)
	}
	fmt.Printf("checked %d nodes (%d pinned by sources)\n", len(v), len(sys.Fixed))
	fmt.Printf("relative residual ‖Gv-b‖/‖b‖ = %.3e\n", rel)
	if worstIdx >= 0 {
		fmt.Printf("worst KCL violation: %.3e A at node %s (limit %.0e)\n",
			worst, nl.NodeName(sys.Unknown[worstIdx]), *tol)
	}
	if worst > *tol {
		return fmt.Errorf("solution violates KCL beyond tolerance")
	}
	fmt.Println("solution verified")
	return nil
}
