// Command pggen generates synthetic power-grid benchmarks and writes them
// as IBM-format SPICE netlists or Matrix Market files.
//
// Usage:
//
//	pggen -case thupg1 -scale 0.5 -netlist out.sp       a registry case
//	pggen -nx 256 -ny 256 -layers 5 -netlist out.sp     a custom grid
//	pggen -case ecology2 -matrix out.mtx                matrix + rhs files
//
// With -matrix the right-hand side is written next to the matrix with a
// ".rhs.mtx" suffix.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"powerrchol/internal/cases"
	"powerrchol/internal/graph"
	"powerrchol/internal/powergrid"
	"powerrchol/internal/sparse"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pggen:", err)
		os.Exit(1)
	}
}

func run() error {
	caseName := flag.String("case", "", "registry case to generate (e.g. ibmpg3, com-DBLP)")
	scale := flag.Float64("scale", 1.0, "scale factor")
	nx := flag.Int("nx", 0, "custom grid width (with -ny)")
	ny := flag.Int("ny", 0, "custom grid height")
	layers := flag.Int("layers", 4, "custom grid metal layers")
	seed := flag.Uint64("seed", 2024, "generator seed")
	dual := flag.Bool("dual", false, "emit both VDD and GND nets in one netlist (IBM style)")
	netlistPath := flag.String("netlist", "", "write an IBM-format SPICE netlist here (grid cases only)")
	matrixPath := flag.String("matrix", "", "write a Matrix Market system here (rhs goes to <path>.rhs.mtx)")
	flag.Parse()

	if *netlistPath == "" && *matrixPath == "" {
		flag.Usage()
		return fmt.Errorf("one of -netlist or -matrix is required")
	}

	var (
		sys  *graph.SDDM
		b    []float64
		grid *powergrid.Grid
	)
	switch {
	case *nx > 0 && *ny > 0 && *dual:
		if *netlistPath == "" {
			return fmt.Errorf("-dual output is a netlist; pass -netlist")
		}
		nl, err := powergrid.GenerateDual(powergrid.Spec{
			NX: *nx, NY: *ny, Layers: *layers, Seed: *seed,
		})
		if err != nil {
			return err
		}
		f, err := os.Create(*netlistPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := nl.Write(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s: dual-net, %d nodes, %d resistors\n",
			*netlistPath, nl.NumNodes(), len(nl.Resistors))
		return nil
	case *nx > 0 && *ny > 0:
		g, err := powergrid.Generate(powergrid.Spec{
			NX: *nx, NY: *ny, Layers: *layers, Seed: *seed,
		})
		if err != nil {
			return err
		}
		grid, sys, b = g, g.Sys, g.B
	case *caseName != "":
		c, err := cases.ByName(*caseName)
		if err != nil {
			return err
		}
		p, err := c.Build(*scale)
		if err != nil {
			return err
		}
		sys, b = p.Sys, p.B
		if c.Kind == "powergrid" && *netlistPath != "" {
			// regenerate as a grid to keep node names and pad structure
			return fmt.Errorf("use -nx/-ny for netlist output, or -matrix for case %q", *caseName)
		}
	default:
		flag.Usage()
		return fmt.Errorf("either -case or -nx/-ny is required")
	}

	if *netlistPath != "" {
		if grid == nil {
			return fmt.Errorf("-netlist requires a generated grid (-nx/-ny)")
		}
		f, err := os.Create(*netlistPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := grid.ToNetlist().Write(f); err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d nodes, %d resistors\n",
			*netlistPath, grid.N(), grid.Sys.G.M())
	}
	if *matrixPath != "" {
		f, err := os.Create(*matrixPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := sparse.WriteMatrixMarket(f, sys.ToCSC(), true); err != nil {
			return err
		}
		rhsPath := strings.TrimSuffix(*matrixPath, ".mtx") + ".rhs.mtx"
		rf, err := os.Create(rhsPath)
		if err != nil {
			return err
		}
		defer rf.Close()
		coo := sparse.NewCOO(len(b), 1, len(b))
		for i, v := range b {
			if v != 0 {
				coo.Add(i, 0, v)
			}
		}
		if err := sparse.WriteMatrixMarket(rf, coo.ToCSC(), false); err != nil {
			return err
		}
		fmt.Printf("wrote %s (n=%d, nnz=%d) and %s\n",
			*matrixPath, sys.N(), sys.NNZ(), rhsPath)
	}
	return nil
}
