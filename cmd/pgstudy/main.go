// Command pgstudy runs many-solve workload studies — the analyses that
// amortize one factorization over a stream of right-hand sides, where
// PowerRChol's cheap, strong preconditioner pays off hardest.
//
// Two studies:
//
//	pgstudy transient [flags]   backward-Euler RC transient: the
//	                            companion matrix is factorized once and
//	                            every timestep is one warm-started solve.
//	pgstudy mc [flags]          Monte Carlo perturbation ensemble:
//	                            resistor jitter, open-circuit line
//	                            failures and load variation, grouped by
//	                            topology fingerprint so repeated
//	                            topologies share one preparation.
//
// Inputs (both studies):
//
//	-netlist grid.sp            IBM-format SPICE netlist
//	-nx N -ny N -layers L       generated synthetic grid (default 32x32x3)
//
// Both studies are deterministic per -seed: rerunning prints bitwise
// identical statistics regardless of -workers, and the fingerprint
// lines are directly comparable across machines of one architecture.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"powerrchol"
	"powerrchol/internal/graph"
	"powerrchol/internal/powergrid"
	"powerrchol/internal/workload"
)

// Exit codes: 0 success, 1 bad input or I/O failure, 2 the solver gave
// up (recovery ladder exhausted, iteration cap, or timeout).
func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "pgstudy:", err)
		var se *powerrchol.SolveError
		if errors.As(err, &se) ||
			errors.Is(err, powerrchol.ErrNotConverged) ||
			errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, context.Canceled) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func usage() error {
	fmt.Fprintln(os.Stderr, "usage: pgstudy <transient|mc> [flags]   (pgstudy <cmd> -h for flags)")
	return fmt.Errorf("a study subcommand is required")
}

func run(args []string) error {
	if len(args) == 0 {
		return usage()
	}
	switch args[0] {
	case "transient":
		return runTransient(args[1:])
	case "mc":
		return runMC(args[1:])
	default:
		return usage()
	}
}

// input carries the common problem-selection and solver flags of both
// subcommands.
type input struct {
	netlist        string
	nx, ny, layers int
	gridSeed       uint64

	method    string
	transform string
	tol       float64
	maxIter   int
	seed      uint64
	workers   int
	timeout   time.Duration
	jsonOut   bool
}

func (in *input) register(fs *flag.FlagSet) {
	fs.StringVar(&in.netlist, "netlist", "", "IBM-format SPICE netlist to study")
	fs.IntVar(&in.nx, "nx", 32, "generated grid width (ignored with -netlist)")
	fs.IntVar(&in.ny, "ny", 32, "generated grid height")
	fs.IntVar(&in.layers, "layers", 3, "generated grid metal layers")
	fs.Uint64Var(&in.gridSeed, "gridseed", 1, "generated grid topology seed")
	fs.StringVar(&in.method, "method", "powerrchol", "solver method")
	fs.StringVar(&in.transform, "transform", "default", "transform-stage override: default|none|fegrass|merge")
	fs.Float64Var(&in.tol, "tol", 1e-6, "relative residual tolerance")
	fs.IntVar(&in.maxIter, "maxiter", 500, "PCG iteration cap")
	fs.Uint64Var(&in.seed, "seed", 2024, "factorization and study seed")
	fs.IntVar(&in.workers, "workers", 0, "ensemble worker-pool size (0 = NumCPU)")
	fs.DurationVar(&in.timeout, "timeout", 0, "abort the whole study after this duration (0 = no limit)")
	fs.BoolVar(&in.jsonOut, "json", false, "emit the machine-readable report instead of the summary")
}

func (in *input) options() (powerrchol.Options, error) {
	method, err := powerrchol.MethodByName(in.method)
	if err != nil {
		return powerrchol.Options{}, err
	}
	transform, err := powerrchol.TransformByName(in.transform)
	if err != nil {
		return powerrchol.Options{}, err
	}
	return powerrchol.Options{
		Method: method, Transform: transform,
		Tol: in.tol, MaxIter: in.maxIter, Seed: in.seed, Workers: in.workers,
	}, nil
}

func (in *input) ctx() (context.Context, context.CancelFunc) {
	if in.timeout > 0 {
		return context.WithTimeout(context.Background(), in.timeout)
	}
	return context.WithCancel(context.Background())
}

// load resolves the problem: a generated Grid (grid != nil) or a bare
// netlist system (grid == nil).
func (in *input) load() (grid *powergrid.Grid, sys *graph.SDDM, b []float64, err error) {
	if in.netlist != "" {
		s, _, err := powergrid.ParseSystemFile(in.netlist)
		if err != nil {
			return nil, nil, nil, err
		}
		fmt.Printf("netlist: n=%d nnz=%d (%d pinned nodes)\n", s.Sys.N(), s.Sys.NNZ(), len(s.Fixed))
		return nil, s.Sys, s.B, nil
	}
	g, err := powergrid.Generate(powergrid.Spec{
		Name: "pgstudy", NX: in.nx, NY: in.ny, Layers: in.layers, Seed: in.gridSeed,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	fmt.Printf("grid: %dx%dx%d, n=%d nnz=%d\n", in.nx, in.ny, in.layers, g.N(), g.Sys.NNZ())
	return g, g.Sys, g.B, nil
}

func runTransient(args []string) error {
	var in input
	fs := flag.NewFlagSet("pgstudy transient", flag.ExitOnError)
	in.register(fs)
	steps := fs.Int("steps", 50, "number of backward-Euler steps")
	dt := fs.Float64("dt", 1e-11, "time step h (s)")
	capF := fs.Float64("cap", 1e-15, "uniform node capacitance (F; netlist input only)")
	surge := fs.Int("surge", 0, "grid surge step (0 = steps/2, negative disables; grid input only)")
	cold := fs.Bool("cold", false, "disable warm-started steps (cold-start referee mode)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt, err := in.options()
	if err != nil {
		return err
	}
	ctx, cancel := in.ctx()
	defer cancel()
	grid, sys, b, err := in.load()
	if err != nil {
		return err
	}

	var tr *workload.TransientReport
	if grid != nil {
		tr, err = workload.Transient(ctx, grid, workload.TransientSpec{
			Grid: powergrid.TransientSpec{
				Steps: *steps, TimeStep: *dt, SurgeStep: *surge, Seed: in.seed,
			},
			Cold: *cold,
		}, opt)
	} else {
		tr, err = workload.SystemTransient(ctx, sys, b, workload.StepStudySpec{
			Cap: *capF, TimeStep: *dt, Steps: *steps, Cold: *cold,
		}, opt)
	}
	if err != nil {
		return err
	}
	if in.jsonOut {
		return json.NewEncoder(os.Stdout).Encode(tr)
	}
	fmt.Printf("transient: %d steps, %d preparations, %d PCG iterations (%.1f/step)\n",
		tr.Steps, tr.Preparations, tr.TotalIterations, float64(tr.TotalIterations)/float64(tr.Steps))
	fmt.Printf("setup %v, steps %v (%.1f steps/sec)\n",
		tr.SetupTime, tr.SolveTime, float64(tr.Steps)/tr.SolveTime.Seconds())
	// The amortization headline: what the same run would cost if every
	// step refactorized.
	naive := time.Duration(tr.Steps)*tr.SetupTime + tr.SolveTime
	fmt.Printf("amortization: %v once vs %v per-step naive (%.1fx)\n",
		tr.SetupTime+tr.SolveTime, naive, float64(naive)/float64(tr.SetupTime+tr.SolveTime))
	if grid != nil {
		fmt.Printf("peak drop %.6f V at step %d\n", tr.Peak, tr.PeakStep)
	} else {
		fmt.Printf("peak step delta %.6f V at step %d (settling)\n", tr.Peak, tr.PeakStep)
	}
	fmt.Printf("wavefp %016x\n", tr.WaveFP)
	return nil
}

func runMC(args []string) error {
	var in input
	fs := flag.NewFlagSet("pgstudy mc", flag.ExitOnError)
	in.register(fs)
	samples := fs.Int("samples", 32, "ensemble size")
	rsigma := fs.Float64("rsigma", 0, "lognormal sigma on every line conductance (process variation)")
	failCands := fs.Int("failcands", 0, "open-circuit failure candidate lines (0 = default 8 when -failprob > 0)")
	failProb := fs.Float64("failprob", 0, "per-candidate open-circuit probability per sample")
	loadSigma := fs.Float64("loadsigma", 0.2, "lognormal sigma on every current draw")
	threshold := fs.Float64("threshold", 0, "per-node drop-exceedance threshold (V; 0 disables)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opt, err := in.options()
	if err != nil {
		return err
	}
	ctx, cancel := in.ctx()
	defer cancel()
	grid, sys, b, err := in.load()
	if err != nil {
		return err
	}

	spec := workload.MCSpec{
		Samples:        *samples,
		Seed:           in.seed,
		ResistorSigma:  *rsigma,
		FailCandidates: *failCands,
		FailProb:       *failProb,
		LoadSigma:      *loadSigma,
		DropThreshold:  *threshold,
	}
	var res *workload.MCResult
	if grid != nil {
		res, err = workload.MonteCarloGrid(ctx, grid, spec, opt)
	} else {
		res, err = workload.MonteCarlo(ctx, sys, b, spec, opt)
	}
	if err != nil {
		return err
	}
	if in.jsonOut {
		return json.NewEncoder(os.Stdout).Encode(res)
	}
	fmt.Printf("mc: %d samples on %d topologies (%d reuse hits), %d preparations, %d PCG iterations\n",
		res.Samples, res.Groups, res.ReuseHits, res.Preparations, res.TotalIterations)
	fmt.Printf("setup %v, total %v (%.1f samples/sec)\n",
		res.SetupTime, res.SolveTime, float64(res.Samples)/res.SolveTime.Seconds())
	fmt.Printf("worst drop: peak %.6f V (sample %d)", res.Peak, res.PeakSample)
	for _, q := range res.Quantiles {
		fmt.Printf("  p%g %.6f", q.P*100, q.V)
	}
	fmt.Println()
	if res.Exceedance != nil {
		over := 0
		for _, e := range res.Exceedance {
			if e > 0 {
				over++
			}
		}
		fmt.Printf("exceedance: %d nodes ever over %.3f V drop\n", over, spec.DropThreshold)
	}
	fmt.Printf("statsfp %016x\n", res.StatsFP)
	return nil
}
