// Command benchtab regenerates the tables and figures of the PowerRChol
// paper's evaluation on the synthetic benchmark suite.
//
// Usage:
//
//	benchtab [-scale f] [-tol t] [-maxiter n] [-seed s] <experiment>...
//
// where experiment is one of: table1 table2 table3 table4 fig1 fig2 fig3
// ablations all. "all" runs every table and figure (not the ablations).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"powerrchol/internal/bench"
)

func main() {
	scale := flag.Float64("scale", 1.0, "linear scale factor for every benchmark case")
	tol := flag.Float64("tol", 1e-6, "PCG relative tolerance")
	maxIter := flag.Int("maxiter", 500, "PCG iteration cap (paper's divergence cutoff)")
	seed := flag.Uint64("seed", 2024, "randomized factorization seed")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: benchtab [flags] <table1|table2|table3|table4|fig1|fig2|fig3|ablations|all>...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := bench.Config{
		Scale: *scale, Tol: *tol, MaxIter: *maxIter, Seed: *seed, Out: os.Stdout,
	}
	drivers := map[string][]func(bench.Config) error{
		"table1": {bench.Table1},
		"table2": {bench.Table2},
		"table3": {bench.Table3},
		"table4": {bench.Table4},
		"fig1":   {bench.Fig1},
		"fig2":   {bench.Fig2},
		"fig3":   {bench.Fig3},
		"ablations": {bench.AblationBuckets, bench.AblationSampling, bench.AblationHeavyRule,
			bench.AblationRecovery, bench.AblationSamples, bench.AblationOrderings,
			bench.AblationSmoothedAMG, bench.AblationDensity},
		"all": {bench.Table1, bench.Table2, bench.Table3, bench.Table4,
			bench.Fig1, bench.Fig2, bench.Fig3},
	}
	for _, name := range flag.Args() {
		fns, ok := drivers[name]
		if !ok {
			fmt.Fprintf(os.Stderr, "benchtab: unknown experiment %q\n", name)
			os.Exit(2)
		}
		for _, fn := range fns {
			t0 := time.Now()
			if err := fn(cfg); err != nil {
				fmt.Fprintf(os.Stderr, "benchtab: %s: %v\n", name, err)
				os.Exit(1)
			}
			fmt.Printf("[%s done in %v]\n\n", name, time.Since(t0).Round(time.Millisecond))
		}
	}
}
