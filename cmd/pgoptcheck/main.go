// pgoptcheck is the compiler-diagnostics contract gate: where pglint
// guards what the source says, pgoptcheck guards what the compiler
// decided. It compiles the hot kernel packages (internal/lint/policy's
// hot surface by default) with `-gcflags='-m=2 -d=ssa/check_bce/debug=1'`,
// parses the bounds-check, escape-analysis and inlining diagnostics,
// and reconciles them against the declared optimization contract:
//
//   - every function in a hot package must keep its retained
//     bounds-check count at or below the entry committed in
//     .pgopt-baseline.json (rule bce);
//   - //pgopt:noescape functions must not heap-allocate (rule escape);
//   - //pgopt:inline functions must stay inlinable (rule inline).
//
// Modes:
//
//	pgoptcheck [pkgs...]                 gate: exit 1 on any finding not
//	                                     covered by the baseline, write
//	                                     SARIF 2.1.0 to -o
//	pgoptcheck -diff [pkgs...]           print the full delta against the
//	                                     baseline (new / grown / improved /
//	                                     fixed) for PR review
//	pgoptcheck -update-baseline [pkgs...] rewrite the baseline to sanction
//	                                     exactly the current findings
//
// The usual entry point is `make optcheck`. See DESIGN.md §13.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"powerrchol/internal/lint/optcheck"
	"powerrchol/internal/lint/sarif"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("pgoptcheck", flag.ExitOnError)
	out := fs.String("o", "pgopt.sarif", "write the SARIF log here ('-' for stdout, '' to skip)")
	basePath := fs.String("baseline", ".pgopt-baseline.json", "baseline of sanctioned residual findings")
	update := fs.Bool("update-baseline", false, "rewrite the baseline to sanction all current findings and exit 0")
	diff := fs.Bool("diff", false, "print the full delta against the baseline (new, grown, improved, fixed)")
	fs.Parse(args)

	root, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgoptcheck: %v\n", err)
		return 2
	}
	report, err := optcheck.Run(optcheck.Config{Root: root, Patterns: fs.Args()})
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgoptcheck: %v\n", err)
		return 2
	}
	findings := report.Findings

	if *update {
		if err := optcheck.FromFindings(findings).WriteFile(*basePath); err != nil {
			fmt.Fprintf(os.Stderr, "pgoptcheck: %v\n", err)
			return 2
		}
		sites := 0
		for _, f := range findings {
			sites += f.Count
		}
		fmt.Printf("pgoptcheck: baseline %s updated with %d finding(s), %d sanctioned site(s)\n", *basePath, len(findings), sites)
		return 0
	}

	baseline, err := optcheck.LoadBaseline(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pgoptcheck: %v\n", err)
		return 2
	}
	delta := baseline.Split(findings)

	if *out != "" {
		if err := writeSARIF(*out, findings, delta.Covered); err != nil {
			fmt.Fprintf(os.Stderr, "pgoptcheck: %v\n", err)
			return 2
		}
	}

	s := report.Stats
	fmt.Fprintf(os.Stderr, "pgoptcheck: %d finding(s) (%d baselined, %d new); compiler kept %d bounds check(s), %d escape(s), refused %d inline(s) across the surface\n",
		len(findings), len(findings)-len(delta.Fresh), len(delta.Fresh), s.BoundsChecks, s.Escapes+s.MovedToHeap, s.CannotInline)

	if *diff {
		for _, f := range delta.Improved {
			fmt.Printf("  IMPROVED %s (baseline sanctions more sites — tighten with -update-baseline)\n", f.String())
		}
		for _, e := range delta.Stale {
			fmt.Printf("  FIXED    %s: [%s] %s: %s (%d sanctioned site(s) no longer present)\n", e.File, e.Rule, e.Func, e.Message, e.Count)
		}
	}
	for _, f := range delta.Fresh {
		fmt.Fprintf(os.Stderr, "  NEW %s\n", f.String())
		for _, d := range f.Detail {
			fmt.Fprintf(os.Stderr, "      %s\n", d)
		}
	}
	if len(delta.Fresh) > 0 {
		fmt.Fprintf(os.Stderr, "pgoptcheck: the compiler no longer optimizes the contracted surface — restore the optimization (bounds hints, stack scratch, smaller function) or, after review, sanction it: pgoptcheck -update-baseline\n")
		return 1
	}
	return 0
}

// writeSARIF reuses the pglint SARIF 2.1.0 emitter: optcheck findings
// map onto it with the function name folded into the message (the
// emitter's baseline keys are not used — the counted optcheck gate
// decides coverage, passed in as the baselined vector).
func writeSARIF(path string, findings []optcheck.Finding, covered []bool) error {
	var rules []sarif.Rule
	docs := optcheck.RuleDocs()
	for _, id := range []string{optcheck.RuleBCE, optcheck.RuleEscape, optcheck.RuleInline, optcheck.RuleDirective, optcheck.RuleSkew} {
		rules = append(rules, sarif.Rule{ID: id, Doc: docs[id]})
	}
	sfs := make([]sarif.Finding, len(findings))
	for i, f := range findings {
		msg := fmt.Sprintf("%s: %s (%d site(s))", f.Func, f.Message, f.Count)
		for _, d := range f.Detail {
			msg += "\n" + d
		}
		sfs[i] = sarif.Finding{Rule: f.Rule, File: f.File, Line: f.Line, Message: msg}
	}
	log := sarif.NewLog(rules, sfs, covered)
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return log.Write(w)
}
