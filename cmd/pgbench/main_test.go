package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"powerrchol"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenConfig is the fixed configuration the schema golden pins: one
// tiny case, the headline method plus the direct baseline, both index
// widths. Everything it produces outside the deterministic subset is
// zeroed before comparison.
func goldenConfig() benchConfig {
	return benchConfig{
		Scale:      0.1,
		Tol:        1e-6,
		MaxIter:    500,
		Seed:       2024,
		Cases:      []string{"ibmpg3"},
		Methods:    []string{"powerrchol", "direct"},
		IndexModes: []string{"wide", "compact"},
		Workloads:  true,
	}
}

// TestReportSchemaGolden pins the deterministic subset of the JSON
// report — schema version, config encoding, case inventory and the
// method × case × index-mode result grid — to a golden file. Timings
// and memory counters are volatile by nature and excluded; renaming or
// removing any pinned field is a schema break and must bump benchSchema.
func TestReportSchemaGolden(t *testing.T) {
	rep, err := runBench(goldenConfig(), io.Discard)
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	var buf bytes.Buffer
	if err := writeReport(&buf, deterministicSubset(rep)); err != nil {
		t.Fatalf("writeReport: %v", err)
	}
	got := buf.Bytes()

	golden := filepath.Join("testdata", "schema.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatalf("writing golden: %v", err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden (generate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("report schema drifted from golden (run `go test ./cmd/pgbench -update` after a deliberate change)\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestReportFieldsPopulated checks that the volatile fields the golden
// cannot pin are actually measured: a solve takes time, allocates, and
// reports its factor's index footprint halved under compact storage.
func TestReportFieldsPopulated(t *testing.T) {
	rep, err := runBench(goldenConfig(), io.Discard)
	if err != nil {
		t.Fatalf("runBench: %v", err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("got %d results, want 4 (2 methods × 2 index modes)", len(rep.Results))
	}
	byKey := map[string]runResult{}
	for _, rr := range rep.Results {
		if rr.Error != "" {
			t.Errorf("%s/%s/%s failed: %s", rr.Case, rr.Method, rr.IndexMode, rr.Error)
		}
		if !rr.Converged {
			t.Errorf("%s/%s/%s did not converge", rr.Case, rr.Method, rr.IndexMode)
		}
		if rr.TotalNS <= 0 || rr.TotalNS != rr.ReorderNS+rr.FactorizeNS+rr.IterateNS {
			t.Errorf("%s/%s/%s: total_ns %d does not sum stages %d+%d+%d",
				rr.Case, rr.Method, rr.IndexMode, rr.TotalNS, rr.ReorderNS, rr.FactorizeNS, rr.IterateNS)
		}
		if rr.Allocs == 0 || rr.AllocBytes == 0 || rr.HeapPeakBytes == 0 {
			t.Errorf("%s/%s/%s: memory counters not populated: allocs=%d alloc_bytes=%d heap_peak=%d",
				rr.Case, rr.Method, rr.IndexMode, rr.Allocs, rr.AllocBytes, rr.HeapPeakBytes)
		}
		if rr.FactorNNZ == 0 || rr.FactorIndexBytes == 0 {
			t.Errorf("%s/%s/%s: factor fields not populated: nnz=%d index_bytes=%d",
				rr.Case, rr.Method, rr.IndexMode, rr.FactorNNZ, rr.FactorIndexBytes)
		}
		byKey[rr.Method+"/"+rr.IndexMode] = rr
	}
	for _, m := range []string{"powerrchol", "direct"} {
		wide, compact := byKey[m+"/wide"], byKey[m+"/compact"]
		// Identical factor, half the index bytes: nnz equal and
		// wide bytes = 2 × compact bytes exactly (both layouts store
		// nnz row indices + n+1 column pointers).
		if wide.FactorNNZ != compact.FactorNNZ {
			t.Errorf("%s: factor nnz differs across index modes: wide %d, compact %d",
				m, wide.FactorNNZ, compact.FactorNNZ)
		}
		if wide.FactorIndexBytes != 2*compact.FactorIndexBytes {
			t.Errorf("%s: index bytes not halved: wide %d, compact %d",
				m, wide.FactorIndexBytes, compact.FactorIndexBytes)
		}
		// The compact solve performs the identical float ops: same
		// iteration count and residual to the last bit.
		if wide.Iterations != compact.Iterations || wide.Residual != compact.Residual { //pglint:float-exact bitwise-identity contract across index widths
			t.Errorf("%s: solve differs across index modes: wide (%d iters, %g), compact (%d iters, %g)",
				m, wide.Iterations, wide.Residual, compact.Iterations, compact.Residual)
		}
	}
	if rep.Env.GoVersion == "" || rep.Env.NumCPU == 0 {
		t.Errorf("env not populated: %+v", rep.Env)
	}
	if len(rep.Workloads) != 2 {
		t.Fatalf("got %d workload results, want 2 (transient + mc per case)", len(rep.Workloads))
	}
	for _, wr := range rep.Workloads {
		if wr.Error != "" {
			t.Errorf("workload %s/%s failed: %s", wr.Case, wr.Kind, wr.Error)
			continue
		}
		if wr.Preparations == 0 || wr.TotalIterations == 0 || wr.SolveNS <= 0 || wr.FP == "" {
			t.Errorf("workload %s/%s: volatile fields not populated: preps=%d iters=%d solve_ns=%d fp=%q",
				wr.Case, wr.Kind, wr.Preparations, wr.TotalIterations, wr.SolveNS, wr.FP)
		}
		switch wr.Kind {
		case "transient":
			// Factorize-once: one preparation amortized over the
			// whole step sequence.
			if wr.Steps == 0 || wr.Preparations != 1 {
				t.Errorf("transient %s: steps=%d preparations=%d, want steps>0 and exactly 1 preparation",
					wr.Case, wr.Steps, wr.Preparations)
			}
		case "mc":
			// Fingerprint grouping must collapse the sample set into
			// fewer factorizations than samples.
			if wr.Samples == 0 || wr.Groups == 0 || wr.Groups >= wr.Samples {
				t.Errorf("mc %s: samples=%d groups=%d, want 0 < groups < samples",
					wr.Case, wr.Samples, wr.Groups)
			}
		default:
			t.Errorf("unknown workload kind %q", wr.Kind)
		}
	}
}

// TestRunWritesFile exercises the CLI entry end to end: flag parsing,
// file output, and the canonical encoding (indented JSON, trailing
// newline) that keeps committed BENCH_<n>.json points diffable.
func TestRunWritesFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	err := run([]string{
		"-point", "6", "-o", path, "-scale", "0.1",
		"-cases", "ibmpg3", "-methods", "powerrchol", "-index", "compact",
	}, io.Discard)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading output: %v", err)
	}
	if !bytes.HasSuffix(data, []byte("}\n")) {
		t.Errorf("output does not end in }\\n")
	}
	var rep report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if rep.Schema != benchSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, benchSchema)
	}
	if rep.Point != 6 {
		t.Errorf("point = %d, want 6", rep.Point)
	}
	if len(rep.Results) != 1 || rep.Results[0].IndexMode != "compact" {
		t.Errorf("results = %+v, want one compact powerrchol entry", rep.Results)
	}
	if rep.Created == "" {
		t.Errorf("created timestamp missing")
	}
}

// TestSelectorErrors pins the CLI's rejection of unknown names, so a
// typo fails loudly instead of silently benchmarking nothing.
func TestSelectorErrors(t *testing.T) {
	if _, err := selectCases([]string{"nosuchcase"}); err == nil {
		t.Errorf("selectCases accepted an unknown case")
	}
	if _, err := selectMethods([]string{"nosuchmethod"}); err == nil {
		t.Errorf("selectMethods accepted an unknown method")
	}
	if _, err := parseIndexModes([]string{"int16"}); err == nil {
		t.Errorf("parseIndexModes accepted an unknown mode")
	}
	modes, err := parseIndexModes([]string{"wide", "compact", "auto"})
	if err != nil || len(modes) != 3 {
		t.Fatalf("parseIndexModes(wide,compact,auto) = %v, %v", modes, err)
	}
	if modes[0] != powerrchol.IndexWide || modes[1] != powerrchol.IndexCompact || modes[2] != powerrchol.IndexAuto {
		t.Errorf("parseIndexModes order wrong: %v", modes)
	}
	if got := splitList(" a, b ,,c "); strings.Join(got, "|") != "a|b|c" {
		t.Errorf("splitList = %v", got)
	}
}
