// Command pgbench measures every registered solver method against the
// built-in benchmark cases and emits one machine-readable JSON document —
// the repository's performance-trajectory format. Each point in the
// trajectory is a schema-versioned snapshot (BENCH_<n>.json, one per
// growth step) holding per-stage wall time, PCG iteration counts,
// allocation totals, peak heap and (on Linux) process RSS for every
// method × case × index-mode combination, so regressions and the
// memory-diet effect of compact (int32) index storage are diffable
// across revisions.
//
//	pgbench -point 6 -scale 0.15 -o BENCH_6.json
//	pgbench -cases ibmpg3,thupg1 -methods powerrchol,direct -index wide
//
// Absolute times depend on the host; the fields meant for cross-revision
// comparison are the iteration counts, factor sizes, index bytes and
// allocation totals, with the timings read as same-host ratios.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"powerrchol"
	"powerrchol/internal/cases"
	"powerrchol/internal/workload"
)

// benchSchema identifies the report layout. Bump only on breaking field
// changes; additive fields keep the version.
const benchSchema = "powerrchol-bench/1"

// report is one trajectory point. Field order is the emission order.
type report struct {
	Schema  string      `json:"schema"`
	Point   int         `json:"point"`
	Created string      `json:"created,omitempty"`
	Env     envInfo     `json:"env"`
	Config  benchConfig `json:"config"`
	Cases   []caseInfo  `json:"cases"`
	Results []runResult `json:"results"`
	// Workloads holds the many-solve study measurements (transient and
	// Monte Carlo through the session layer), present since point 10.
	// The section is additive: readers of older points see it absent.
	Workloads []workloadResult `json:"workloads,omitempty"`
	// PeakRSSBytes is the process high-water RSS (VmHWM) after the whole
	// run, 0 where /proc is unavailable. Process-wide, not per-result:
	// the kernel's counter is monotone.
	PeakRSSBytes uint64 `json:"peak_rss_bytes"`
}

type envInfo struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// benchConfig is the flag set that produced the report, embedded so a
// point is reproducible from its own header.
type benchConfig struct {
	Scale      float64  `json:"scale"`
	Tol        float64  `json:"tol"`
	MaxIter    int      `json:"max_iter"`
	Seed       uint64   `json:"seed"`
	Workers    int      `json:"workers"`
	Cases      []string `json:"-"`
	Methods    []string `json:"-"`
	IndexModes []string `json:"index_modes"`
	// Workloads toggles the per-case study measurements (transient and
	// Monte Carlo).
	Workloads bool `json:"workloads"`
}

type caseInfo struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	Kind string `json:"kind"`
	N    int    `json:"n"`
	NNZ  int    `json:"nnz"`
}

// runResult is one method × case × index-mode measurement. Durations are
// integer nanoseconds; memory counters are deltas across the solve
// except HeapPeakBytes (sampled maximum of the live heap during it).
type runResult struct {
	Case      string `json:"case"`
	Method    string `json:"method"`
	IndexMode string `json:"index_mode"`

	ReorderNS   int64 `json:"reorder_ns"`
	FactorizeNS int64 `json:"factorize_ns"`
	IterateNS   int64 `json:"iterate_ns"`
	TotalNS     int64 `json:"total_ns"`

	Iterations int     `json:"iterations"`
	Converged  bool    `json:"converged"`
	Residual   float64 `json:"residual"`

	FactorNNZ        int `json:"factor_nnz"`
	FactorIndexBytes int `json:"factor_index_bytes"`
	// MemoryBytes is the solver-state footprint (factor values + index
	// arrays + iteration matrix + solve scratch) — the same number the
	// pgserved cache budgets prepared solvers by (Solver.MemoryBytes).
	MemoryBytes int `json:"memory_bytes,omitempty"`

	Allocs        uint64 `json:"allocs"`
	AllocBytes    uint64 `json:"alloc_bytes"`
	HeapPeakBytes uint64 `json:"heap_peak_bytes"`

	Error string `json:"error,omitempty"`
}

// workloadResult is one many-solve study measurement per case: how the
// factorization amortizes over a stream of right-hand sides. The
// studies run the paper's headline method through the session layer —
// the same code path pgstudy and the pgserved study endpoint use.
type workloadResult struct {
	Case string `json:"case"`
	Kind string `json:"kind"` // transient | mc

	Steps   int `json:"steps,omitempty"`
	Samples int `json:"samples,omitempty"`
	// Groups/ReuseHits report Monte Carlo preparation sharing across
	// fingerprint-identical topologies.
	Groups    int `json:"groups,omitempty"`
	ReuseHits int `json:"reuse_hits,omitempty"`

	Preparations    int `json:"preparations"`
	TotalIterations int `json:"total_iterations"`

	SetupNS int64 `json:"setup_ns"`
	SolveNS int64 `json:"solve_ns"`

	// Peak is the study's headline scalar (peak waveform metric for
	// transient, peak worst-case drop for mc); FP pins the full study
	// statistics (wave or stats fingerprint, hexadecimal).
	Peak float64 `json:"peak"`
	FP   string  `json:"fp"`

	Error string `json:"error,omitempty"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "pgbench:", err)
		os.Exit(1)
	}
}

func run(argv []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pgbench", flag.ContinueOnError)
	point := fs.Int("point", 0, "trajectory point number (the <n> of BENCH_<n>.json)")
	out := fs.String("o", "", "output path (default stdout)")
	scale := fs.Float64("scale", 0.15, "case scale factor (1.0 = full benchmark size)")
	caseList := fs.String("cases", "all", "comma-separated case names, or 'all' / 'powergrid'")
	methodList := fs.String("methods", "all", "comma-separated method names, or 'all'")
	indexList := fs.String("index", "wide,compact", "comma-separated index modes to measure: wide|compact|auto")
	tol := fs.Float64("tol", 1e-6, "relative residual tolerance")
	maxIter := fs.Int("maxiter", 500, "PCG iteration cap")
	seed := fs.Uint64("seed", 2024, "randomized factorization seed")
	workers := fs.Int("workers", 0, "parallel kernel workers (0 = serial, the paper's configuration)")
	workloads := fs.Bool("workloads", true, "measure the many-solve workload studies (transient, Monte Carlo) per case")
	if err := fs.Parse(argv); err != nil {
		return err
	}

	cfg := benchConfig{
		Scale:      *scale,
		Tol:        *tol,
		MaxIter:    *maxIter,
		Seed:       *seed,
		Workers:    *workers,
		Cases:      splitList(*caseList),
		Methods:    splitList(*methodList),
		IndexModes: splitList(*indexList),
		Workloads:  *workloads,
	}
	rep, err := runBench(cfg, os.Stderr)
	if err != nil {
		return err
	}
	rep.Point = *point
	rep.Created = time.Now().UTC().Format(time.RFC3339)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := writeReport(w, rep); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "pgbench: wrote %d results to %s\n", len(rep.Results), *out)
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// writeReport emits the canonical encoding: two-space indentation and a
// trailing newline, so points diff cleanly under version control.
func writeReport(w io.Writer, rep *report) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(data, '\n'))
	return err
}

// runBench builds the selected cases once and measures every method ×
// index-mode combination on each. Per-run failures (non-convergence, an
// indefinite preconditioner) are recorded in the result's Error field,
// not returned: one weak baseline must not sink the trajectory point.
// progress receives one line per case; pass io.Discard to silence it.
func runBench(cfg benchConfig, progress io.Writer) (*report, error) {
	selCases, err := selectCases(cfg.Cases)
	if err != nil {
		return nil, err
	}
	selMethods, err := selectMethods(cfg.Methods)
	if err != nil {
		return nil, err
	}
	modes, err := parseIndexModes(cfg.IndexModes)
	if err != nil {
		return nil, err
	}

	rep := &report{
		Schema: benchSchema,
		Env: envInfo{
			GoVersion: runtime.Version(),
			GOOS:      runtime.GOOS,
			GOARCH:    runtime.GOARCH,
			NumCPU:    runtime.NumCPU(),
		},
		Config: cfg,
	}
	for _, c := range selCases {
		p, err := c.Build(cfg.Scale)
		if err != nil {
			return nil, fmt.Errorf("building case %s: %w", c.Name, err)
		}
		rep.Cases = append(rep.Cases, caseInfo{
			ID: c.ID, Name: c.Name, Kind: c.Kind, N: p.Sys.N(), NNZ: p.NNZ(),
		})
		fmt.Fprintf(progress, "pgbench: %s n=%d nnz=%d (%d methods × %d index modes)\n",
			c.Name, p.Sys.N(), p.NNZ(), len(selMethods), len(modes))
		for _, mi := range selMethods {
			for _, mode := range modes {
				rep.Results = append(rep.Results, runOne(p, mi, mode, cfg))
			}
		}
		if cfg.Workloads {
			rep.Workloads = append(rep.Workloads, runWorkloads(c.Name, p, cfg)...)
		}
	}
	rep.PeakRSSBytes = readProcStatusKB("VmHWM:")
	return rep, nil
}

func selectCases(names []string) ([]cases.Case, error) {
	if len(names) == 1 {
		switch names[0] {
		case "all":
			return cases.All(), nil
		case "powergrid", "pg":
			return cases.PowerGrid(), nil
		}
	}
	out := make([]cases.Case, 0, len(names))
	for _, name := range names {
		c, err := cases.ByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, c)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no cases selected")
	}
	return out, nil
}

func selectMethods(names []string) ([]powerrchol.MethodInfo, error) {
	all := powerrchol.Methods()
	if len(names) == 1 && names[0] == "all" {
		return all, nil
	}
	out := make([]powerrchol.MethodInfo, 0, len(names))
	for _, name := range names {
		found := false
		for _, mi := range all {
			if mi.Name == name {
				out = append(out, mi)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("unknown method %q (see pgsolve -method list)", name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no methods selected")
	}
	return out, nil
}

func parseIndexModes(names []string) ([]powerrchol.IndexMode, error) {
	if len(names) == 0 {
		return []powerrchol.IndexMode{powerrchol.IndexWide}, nil
	}
	out := make([]powerrchol.IndexMode, 0, len(names))
	for _, name := range names {
		switch name {
		case "wide":
			out = append(out, powerrchol.IndexWide)
		case "compact":
			out = append(out, powerrchol.IndexCompact)
		case "auto":
			out = append(out, powerrchol.IndexAuto)
		default:
			return nil, fmt.Errorf("unknown index mode %q (want wide, compact or auto)", name)
		}
	}
	return out, nil
}

// runOne measures a single solve. The allocation counters are deltas of
// runtime.MemStats across the solve after a fresh GC; the heap peak is
// the maximum live heap a concurrent sampler observed during it.
func runOne(p *cases.Problem, mi powerrchol.MethodInfo, mode powerrchol.IndexMode, cfg benchConfig) runResult {
	rr := runResult{
		Case:      p.Name,
		Method:    mi.Name,
		IndexMode: mode.String(),
	}
	opt := powerrchol.Options{
		Method:       mi.Method,
		Tol:          cfg.Tol,
		MaxIter:      cfg.MaxIter,
		Seed:         cfg.Seed,
		Workers:      cfg.Workers,
		CompactIndex: mode,
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	sampler := startHeapSampler(2 * time.Millisecond)
	res, err := powerrchol.Solve(p.Sys, p.B, opt)
	peak := sampler.Stop()
	runtime.ReadMemStats(&after)

	rr.Allocs = after.Mallocs - before.Mallocs
	rr.AllocBytes = after.TotalAlloc - before.TotalAlloc
	rr.HeapPeakBytes = peak
	if after.HeapAlloc > rr.HeapPeakBytes {
		rr.HeapPeakBytes = after.HeapAlloc
	}
	if err != nil {
		rr.Error = err.Error()
	}
	if res == nil {
		return rr
	}
	rr.ReorderNS = res.Timings.Reorder.Nanoseconds()
	rr.FactorizeNS = res.Timings.Factorize.Nanoseconds()
	rr.IterateNS = res.Timings.Iterate.Nanoseconds()
	rr.TotalNS = res.Timings.Total().Nanoseconds()
	rr.Iterations = res.Iterations
	rr.Converged = res.Converged
	rr.Residual = res.Residual
	rr.FactorNNZ = res.FactorNNZ
	rr.FactorIndexBytes = res.FactorIndexBytes
	rr.MemoryBytes = res.MemoryBytes
	return rr
}

// runWorkloads measures the two many-solve studies on one case with the
// paper's headline method: a 30-step step-response transient (one
// factorization amortized over every step, warm-started) and a
// 16-sample Monte Carlo ensemble mixing open-circuit line failures with
// load jitter (preparations shared across fingerprint-identical
// topologies). Study sizes are fixed so the numbers are comparable
// across trajectory points; failures land in the Error field like any
// other per-run failure.
func runWorkloads(caseName string, p *cases.Problem, cfg benchConfig) []workloadResult {
	opt := powerrchol.Options{
		Method:  powerrchol.MethodPowerRChol,
		Tol:     cfg.Tol,
		MaxIter: cfg.MaxIter,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
	}
	ctx := context.Background()
	out := make([]workloadResult, 0, 2)

	tw := workloadResult{Case: caseName, Kind: "transient"}
	if tr, err := workload.SystemTransient(ctx, p.Sys, p.B, workload.StepStudySpec{Steps: 30}, opt); err != nil {
		tw.Error = err.Error()
	} else {
		tw.Steps = tr.Steps
		tw.Preparations = tr.Preparations
		tw.TotalIterations = tr.TotalIterations
		tw.SetupNS = tr.SetupTime.Nanoseconds()
		tw.SolveNS = tr.SolveTime.Nanoseconds()
		tw.Peak = tr.Peak
		tw.FP = strconv.FormatUint(tr.WaveFP, 16)
	}
	out = append(out, tw)

	mw := workloadResult{Case: caseName, Kind: "mc"}
	spec := workload.MCSpec{
		Samples: 16, Seed: cfg.Seed,
		FailCandidates: 4, FailProb: 0.25, LoadSigma: 0.2,
	}
	if mc, err := workload.MonteCarlo(ctx, p.Sys, p.B, spec, opt); err != nil {
		mw.Error = err.Error()
	} else {
		mw.Samples = mc.Samples
		mw.Groups = mc.Groups
		mw.ReuseHits = mc.ReuseHits
		mw.Preparations = mc.Preparations
		mw.TotalIterations = mc.TotalIterations
		mw.SetupNS = mc.SetupTime.Nanoseconds()
		mw.SolveNS = mc.SolveTime.Nanoseconds()
		mw.Peak = mc.Peak
		mw.FP = strconv.FormatUint(mc.StatsFP, 16)
	}
	return append(out, mw)
}

// heapSampler polls runtime.MemStats.HeapAlloc on a fixed interval and
// keeps the maximum — the "peak heap" a solve actually reached, which
// the before/after deltas alone cannot see (a transient double-buffer
// peak is invisible once it is freed). ReadMemStats stops the world, so
// the interval is a compromise: 2ms resolves any stage longer than a
// few milliseconds while perturbing the timings well under 1%.
type heapSampler struct {
	quit chan struct{}
	done chan struct{}
	peak uint64
}

func startHeapSampler(interval time.Duration) *heapSampler {
	s := &heapSampler{quit: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		var ms runtime.MemStats
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-s.quit:
				return
			case <-t.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > s.peak {
					s.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return s
}

// Stop terminates the sampler and returns the observed peak. The done
// channel orders the final peak write before the read.
func (s *heapSampler) Stop() uint64 {
	close(s.quit)
	<-s.done
	return s.peak
}

// readProcStatusKB reads a kB-denominated field (e.g. "VmHWM:") from
// /proc/self/status, returning bytes, or 0 where /proc is unavailable
// (non-Linux hosts) — the "optional" in the RSS column.
func readProcStatusKB(field string) uint64 {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, field) {
			continue
		}
		f := strings.Fields(strings.TrimPrefix(line, field))
		if len(f) < 1 {
			return 0
		}
		kb, err := strconv.ParseUint(f[0], 10, 64)
		if err != nil {
			return 0
		}
		return kb * 1024
	}
	return 0
}

// deterministicSubset returns a copy of the report with every
// host- and run-dependent field zeroed: what remains — the schema
// version, configuration, case inventory and the result grid's
// identifying fields — is identical across hosts and runs, and is what
// the golden schema test pins.
func deterministicSubset(rep *report) *report {
	out := *rep
	out.Created = ""
	out.Env = envInfo{}
	out.PeakRSSBytes = 0
	out.Results = make([]runResult, len(rep.Results))
	for i, rr := range rep.Results {
		out.Results[i] = runResult{
			Case:      rr.Case,
			Method:    rr.Method,
			IndexMode: rr.IndexMode,
		}
	}
	out.Workloads = make([]workloadResult, len(rep.Workloads))
	for i, wr := range rep.Workloads {
		out.Workloads[i] = workloadResult{
			Case:    wr.Case,
			Kind:    wr.Kind,
			Steps:   wr.Steps,
			Samples: wr.Samples,
		}
	}
	if len(out.Workloads) == 0 {
		out.Workloads = nil
	}
	return &out
}
