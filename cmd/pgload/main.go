// Command pgload is the load driver for pgserved: it simulates a fleet
// of concurrent clients firing single-RHS solve requests and reports
// client-observed latency quantiles, throughput, shed rate and the
// server's cache behaviour. It is how the service's robustness claims
// are measured rather than asserted: run it at 2× the admission capacity
// and watch the shed rate rise while p99 stays bounded.
//
// Two targets:
//
//	pgload -url http://host:8723     drive a running pgserved
//	pgload                           spin up an in-process server first
//
// The in-process mode needs no daemon and is what `make`-level smoke
// checks use; it accepts the same server knobs as pgserved. The grid is
// a synthetic nx×ny mesh (the standard power-grid shape); -clients and
// -duration size the offered load.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"sync"
	"time"

	"powerrchol"
	"powerrchol/internal/rng"
	"powerrchol/internal/serve"
	"powerrchol/internal/testmat"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pgload:", err)
		os.Exit(1)
	}
}

type outcome struct {
	status  int
	latency time.Duration
}

func run() error {
	var (
		url      = flag.String("url", "", "target pgserved base URL (empty = in-process server)")
		clients  = flag.Int("clients", 64, "concurrent client goroutines")
		duration = flag.Duration("duration", 10*time.Second, "load duration")
		nx       = flag.Int("nx", 64, "grid width (in-process grid and RHS sizing)")
		ny       = flag.Int("ny", 64, "grid height")
		nRHS     = flag.Int("rhs", 32, "distinct load patterns cycled by the clients")
		reqTO    = flag.Int64("timeout-ms", 0, "per-request timeout_ms sent to the server (0 = server default)")
		seed     = flag.Uint64("seed", 1, "client randomness seed")

		// In-process server knobs (ignored with -url).
		method      = flag.String("method", "powerrchol", "solver method")
		tol         = flag.Float64("tol", 1e-6, "relative residual target")
		maxInflight = flag.Int("max-inflight", 8, "server slots")
		maxQueue    = flag.Int("max-queue", 64, "server wait queue")
		cacheBudget = flag.Int64("cache-budget", 256<<20, "server cache budget bytes")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "server micro-batch window")
		maxBatch    = flag.Int("max-batch", 32, "server micro-batch width")
	)
	flag.Parse()

	base := *url
	if base == "" {
		m, err := powerrchol.MethodByName(*method)
		if err != nil {
			return err
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		s := serve.New(ctx, serve.Config{
			Options:          powerrchol.Options{Method: m, Tol: *tol, Seed: 42},
			CacheBudgetBytes: *cacheBudget,
			MaxInflight:      *maxInflight,
			MaxQueue:         *maxQueue,
			BatchWindow:      *batchWindow,
			MaxBatch:         *maxBatch,
		})
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		defer func() {
			sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer scancel()
			_ = s.Shutdown(sctx)
		}()
		base = ts.URL
		fmt.Printf("pgload: in-process server (%s, %d slots + %d queue, %d MiB cache)\n",
			*method, *maxInflight, *maxQueue, *cacheBudget>>20)
	}

	grid, n, err := ingest(base, *nx, *ny)
	if err != nil {
		return fmt.Errorf("ingest: %w", err)
	}
	fmt.Printf("pgload: grid %s ingested (n=%d), driving %d clients for %s\n", grid, n, *clients, *duration)

	// Pre-encode the request bodies: the driver measures the server, not
	// the client's JSON encoder.
	bodies := make([][]byte, *nRHS)
	for i := range bodies {
		r := rng.New(uint64(5000 + i))
		b := make([]float64, n)
		for j := range b {
			b[j] = r.Float64() - 0.5
		}
		body, err := json.Marshal(serve.SolveRequest{Grid: grid, B: b, TimeoutMillis: *reqTO})
		if err != nil {
			return err
		}
		bodies[i] = body
	}

	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = *clients
	client := &http.Client{Transport: transport}

	var wg sync.WaitGroup
	perClient := make([][]outcome, *clients)
	start := time.Now()
	deadline := start.Add(*duration)
	for c := 0; c < *clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			r := rng.New(*seed + uint64(c)*0x9e3779b97f4a7c15)
			outs := make([]outcome, 0, 1024)
			for time.Now().Before(deadline) {
				body := bodies[r.Intn(len(bodies))]
				t0 := time.Now()
				resp, err := client.Post(base+"/v1/solve", "application/json", bytes.NewReader(body))
				lat := time.Since(t0)
				if err != nil {
					outs = append(outs, outcome{status: -1, latency: lat})
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				outs = append(outs, outcome{status: resp.StatusCode, latency: lat})
			}
			perClient[c] = outs
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(perClient, elapsed)
	return reportServerStats(base)
}

func ingest(base string, nx, ny int) (string, int, error) {
	sys := testmat.GridSDDM(nx, ny)
	edges := make([][3]float64, 0, sys.G.M())
	for _, e := range sys.G.Edges {
		edges = append(edges, [3]float64{float64(e.U), float64(e.V), e.W})
	}
	body, err := json.Marshal(serve.SystemRequest{N: sys.N(), Edges: edges, D: sys.D})
	if err != nil {
		return "", 0, err
	}
	resp, err := http.Post(base+"/v1/grids", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", 0, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", 0, err
	}
	if resp.StatusCode != http.StatusOK {
		return "", 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var out struct {
		Grid string `json:"grid"`
		N    int    `json:"n"`
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		return "", 0, err
	}
	return out.Grid, out.N, nil
}

func report(perClient [][]outcome, elapsed time.Duration) {
	var all []outcome
	counts := map[int]int{}
	for _, outs := range perClient {
		for _, o := range outs {
			counts[o.status]++
		}
		all = append(all, outs...)
	}
	total := len(all)
	if total == 0 {
		fmt.Println("pgload: no requests completed")
		return
	}
	okLat := make([]time.Duration, 0, total)
	for _, o := range all {
		if o.status == http.StatusOK {
			okLat = append(okLat, o.latency)
		}
	}
	sort.Slice(okLat, func(i, j int) bool { return okLat[i] < okLat[j] })
	q := func(p float64) time.Duration {
		if len(okLat) == 0 {
			return 0
		}
		return okLat[int(p*float64(len(okLat)-1))]
	}
	shed := counts[http.StatusTooManyRequests] + counts[http.StatusServiceUnavailable]
	fmt.Printf("pgload: %d requests in %s (%.0f req/s)\n", total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("  ok:        %d (%.1f%%), %.0f solves/s\n", counts[http.StatusOK],
		100*float64(counts[http.StatusOK])/float64(total), float64(counts[http.StatusOK])/elapsed.Seconds())
	fmt.Printf("  shed:      %d (%.1f%%)  [429=%d 503=%d]\n", shed, 100*float64(shed)/float64(total),
		counts[http.StatusTooManyRequests], counts[http.StatusServiceUnavailable])
	for status, c := range counts {
		switch status {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
		case -1:
			fmt.Printf("  transport errors: %d\n", c)
		default:
			fmt.Printf("  status %d: %d\n", status, c)
		}
	}
	fmt.Printf("  latency (ok): p50=%s p90=%s p99=%s max=%s\n",
		q(0.50).Round(time.Microsecond), q(0.90).Round(time.Microsecond),
		q(0.99).Round(time.Microsecond), q(1.0).Round(time.Microsecond))
}

func reportServerStats(base string) error {
	resp, err := http.Get(base + "/statsz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return err
	}
	hitRate := 0.0
	if st.CacheHits+st.CacheMisses > 0 {
		hitRate = 100 * float64(st.CacheHits) / float64(st.CacheHits+st.CacheMisses)
	}
	avgBatch := 0.0
	if st.Batches > 0 {
		avgBatch = float64(st.BatchedRHS) / float64(st.Batches)
	}
	fmt.Printf("  server: admitted=%d shed=%d refused=%d timeouts=%d panics=%d\n",
		st.Admitted, st.Shed, st.Refused, st.Timeouts, st.Panics)
	fmt.Printf("  cache:  hit rate %.1f%% (%d hits / %d misses), %d entries, %d/%d bytes, %d evictions\n",
		hitRate, st.CacheHits, st.CacheMisses, st.CacheEntries, st.CacheBytes, st.CacheBudget, st.CacheEvictions)
	fmt.Printf("  batch:  %d windows, avg width %.2f; pressure=%s\n", st.Batches, avgBatch, st.Level)
	return nil
}
