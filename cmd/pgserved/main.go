// Command pgserved is the long-lived power-grid solve service: it
// ingests grids over HTTP (POST /v1/grids), caches prepared solvers in a
// fingerprint-keyed LRU bounded by a memory budget, and serves solves
// (POST /v1/solve) with micro-batching, admission control, per-request
// deadlines and a graceful-degradation ladder. See DESIGN.md §12 and
// internal/serve for the architecture.
//
// Endpoints:
//
//	POST /v1/grids   ingest a grid; returns its fingerprint
//	POST /v1/solve   solve one RHS against an ingested grid
//	POST /v1/study   run a bounded workload study (transient or Monte
//	                 Carlo) against an ingested grid
//	GET  /healthz    liveness (200 while the process runs)
//	GET  /readyz     readiness (503 while draining or under critical load)
//	GET  /statsz     counters, latency quantiles, cache and queue state
//
// SIGTERM/SIGINT starts a graceful drain: readiness drops, in-flight
// requests finish (bounded by -drain-timeout), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"powerrchol"
	"powerrchol/internal/serve"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pgserved:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr        = flag.String("addr", ":8723", "listen address")
		method      = flag.String("method", "powerrchol", "solver method (see pgsolve -method list)")
		tol         = flag.Float64("tol", 1e-6, "relative residual target")
		seed        = flag.Uint64("seed", 42, "factorization seed")
		workers     = flag.Int("workers", 0, "batch worker pool size (0 = NumCPU)")
		retries     = flag.Int("retries", 3, "recovery-ladder attempts per factorization (1 = no retry)")
		cacheBudget = flag.Int64("cache-budget", 256<<20, "prepared-solver cache budget in bytes")
		maxGrids    = flag.Int("max-grids", 64, "ingested-grid store bound")
		maxInflight = flag.Int("max-inflight", 8, "concurrently executing solves")
		maxQueue    = flag.Int("max-queue", 64, "solves allowed to wait for a slot")
		batchWindow = flag.Duration("batch-window", 2*time.Millisecond, "micro-batch max delay")
		maxBatch    = flag.Int("max-batch", 32, "micro-batch max width")
		timeout     = flag.Duration("timeout", 30*time.Second, "default per-request deadline")
		maxTimeout  = flag.Duration("max-timeout", 2*time.Minute, "cap on client-requested deadlines")
		maxBytes    = flag.Int64("max-request-bytes", 8<<20, "solve request body limit")
		maxIngest   = flag.Int64("max-ingest-bytes", 256<<20, "grid ingest body limit")
		maxNodes    = flag.Int("max-nodes", 4<<20, "largest accepted grid node count")
		studySteps  = flag.Int("max-study-steps", 200, "transient steps one study request may schedule")
		studySmpls  = flag.Int("max-study-samples", 64, "Monte Carlo samples one study request may schedule")
		drainFor    = flag.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM")
	)
	flag.Parse()

	m, err := powerrchol.MethodByName(*method)
	if err != nil {
		return err
	}
	opt := powerrchol.Options{Method: m, Tol: *tol, Seed: *seed, Workers: *workers}
	if *retries > 1 {
		opt.Retry = powerrchol.RetryPolicy{MaxAttempts: *retries, Escalate: true}
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	s := serve.New(ctx, serve.Config{
		Options:          opt,
		CacheBudgetBytes: *cacheBudget,
		MaxGrids:         *maxGrids,
		MaxInflight:      *maxInflight,
		MaxQueue:         *maxQueue,
		BatchWindow:      *batchWindow,
		MaxBatch:         *maxBatch,
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		MaxRequestBytes:  *maxBytes,
		MaxIngestBytes:   *maxIngest,
		MaxNodes:         *maxNodes,
		MaxStudySteps:    *studySteps,
		MaxStudySamples:  *studySmpls,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("pgserved: listening on %s (method=%s, cache budget %d MiB, %d slots + %d queue)",
		*addr, *method, *cacheBudget>>20, *maxInflight, *maxQueue)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	// Graceful drain: the serve layer refuses new work and waits for
	// in-flight requests, then the HTTP layer closes idle connections.
	log.Printf("pgserved: signal received, draining (budget %s)", *drainFor)
	dctx, dcancel := context.WithTimeout(context.Background(), *drainFor)
	defer dcancel()
	drainErr := s.Shutdown(dctx)
	httpErr := httpSrv.Shutdown(dctx)
	if drainErr != nil {
		return drainErr
	}
	if httpErr != nil && !errors.Is(httpErr, http.ErrServerClosed) {
		return httpErr
	}
	log.Printf("pgserved: drained cleanly")
	return nil
}
