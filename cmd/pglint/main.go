// pglint is the repository's custom static-analysis gate. It has three
// modes, dispatched on the first argument:
//
//	pglint -V=full             print the tool fingerprint (binary sha256)
//	                           that `go vet` keys its result cache on
//	pglint -sarif [pkgs...]    driver mode: re-invoke `go vet -vettool=self
//	                           -json`, diff findings against
//	                           .pglint-baseline.json, write SARIF 2.1.0
//	pglint <unitchecker args>  vettool mode (what `go vet -vettool=` calls)
//
// The usual entry points are `make lint` (vettool mode over ./...) and
// `make lint-sarif` (driver mode; CI uploads the log to code scanning).
// It runs the thirteen analyzers of internal/lint — bannedimport,
// maprange, floateq, poolleak, errwrapcheck, ctxflow, hotalloc,
// goroleak, poolescape, lockcheck, atomicmix, detflow, sendblock — with
// findings suppressed only by per-line //pglint:<name> <reason>
// annotations. The concurrency/determinism analyzers exchange
// cross-package function summaries as analysis facts, which `go vet`
// serializes per package and feeds to dependents automatically. See
// DESIGN.md §9.
package main

import (
	"bytes"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"

	"golang.org/x/tools/go/analysis/unitchecker"

	"powerrchol/internal/lint"
	"powerrchol/internal/lint/sarif"
)

func main() {
	args := os.Args[1:]
	if len(args) > 0 {
		switch args[0] {
		case "-V=full", "--V=full":
			if err := printVersion(); err != nil {
				fmt.Fprintf(os.Stderr, "pglint: %v\n", err)
				os.Exit(1)
			}
			return
		case "-sarif", "--sarif":
			os.Exit(sarifMain(args[1:]))
		}
	}
	unitchecker.Main(lint.Analyzers()...)
}

// printVersion implements the `go vet` tool-ID protocol: vet invokes the
// vettool once as `pglint -V=full` and keys its result cache on the
// printed line, so the fingerprint must change whenever the binary does.
// Hashing the executable itself guarantees that without any source-list
// bookkeeping in the Makefile.
func printVersion() error {
	self, err := os.Executable()
	if err != nil {
		return err
	}
	f, err := os.Open(self)
	if err != nil {
		return err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return err
	}
	// The format is fixed by cmd/go's vet cache: a single line ending in
	// buildID=<hex>.
	fmt.Printf("%s version devel comments-go-here buildID=%x\n",
		filepath.Base(os.Args[0]), h.Sum(nil))
	return nil
}

// sarifMain is the driver mode: run the suite over the requested
// packages, write a SARIF log, and gate on the baseline.
func sarifMain(args []string) int {
	fs := flag.NewFlagSet("pglint -sarif", flag.ExitOnError)
	out := fs.String("o", "pglint.sarif", "write the SARIF log here ('-' for stdout)")
	basePath := fs.String("baseline", ".pglint-baseline.json", "baseline file; findings listed there do not fail the run")
	update := fs.Bool("update-baseline", false, "rewrite the baseline to accept all current findings and exit 0")
	fs.Parse(args)
	pkgs := fs.Args()
	if len(pkgs) == 0 {
		pkgs = []string{"./..."}
	}

	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "pglint: %v\n", err)
		return 2
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self, "-json"}, pkgs...)...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	runErr := cmd.Run()

	root, _ := os.Getwd()
	// `go vet -json` writes its stream to stderr; stdout is included for
	// robustness across toolchain versions.
	findings, perr := sarif.ParseVetJSON(io.MultiReader(&stderr, &stdout), root)
	if perr != nil {
		fmt.Fprintf(os.Stderr, "pglint: %v\n", perr)
		fmt.Fprint(os.Stderr, stderr.String())
		return 2
	}
	if runErr != nil && len(findings) == 0 {
		// vet failed for a reason other than findings (build error, bad
		// package pattern): surface its output verbatim.
		fmt.Fprint(os.Stderr, stderr.String())
		fmt.Fprintf(os.Stderr, "pglint: go vet: %v\n", runErr)
		return 2
	}

	if *update {
		if err := sarif.FromFindings(findings).WriteFile(*basePath); err != nil {
			fmt.Fprintf(os.Stderr, "pglint: %v\n", err)
			return 2
		}
		fmt.Printf("pglint: baseline %s updated with %d finding(s)\n", *basePath, len(findings))
		return 0
	}

	baseline, err := sarif.LoadBaseline(*basePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pglint: %v\n", err)
		return 2
	}
	baselined, fresh := baseline.Split(findings)

	var rules []sarif.Rule
	for _, a := range lint.Analyzers() {
		rules = append(rules, sarif.Rule{ID: a.Name, Doc: a.Doc})
	}
	log := sarif.NewLog(rules, findings, baselined)
	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pglint: %v\n", err)
			return 2
		}
		defer f.Close()
		w = f
	}
	if err := log.Write(w); err != nil {
		fmt.Fprintf(os.Stderr, "pglint: %v\n", err)
		return 2
	}

	fmt.Fprintf(os.Stderr, "pglint: %d finding(s), %d baselined, %d new\n",
		len(findings), len(findings)-len(fresh), len(fresh))
	for _, f := range fresh {
		fmt.Fprintf(os.Stderr, "  NEW %s:%d:%d: [%s] %s\n", f.File, f.Line, f.Column, f.Rule, f.Message)
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "pglint: new findings not in %s — fix them or, if intentional, annotate //pglint:<rule> <reason> (baseline updates: pglint -sarif -update-baseline)\n", *basePath)
		return 1
	}
	return 0
}
