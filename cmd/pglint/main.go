// pglint is the repository's custom static-analysis gate, a unitchecker
// binary speaking the `go vet -vettool` protocol:
//
//	go build -o bin/pglint ./cmd/pglint
//	go vet -vettool=bin/pglint ./...
//
// (or just `make lint`). It runs the five analyzers of internal/lint —
// bannedimport, maprange, floateq, poolleak, errwrapcheck — over every
// package, with findings suppressed only by per-line
// //pglint:<name> <reason> annotations. See DESIGN.md §9.
package main

import (
	"golang.org/x/tools/go/analysis/unitchecker"

	"powerrchol/internal/lint"
)

func main() {
	unitchecker.Main(lint.Analyzers()...)
}
