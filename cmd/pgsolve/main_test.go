package main

import (
	"strings"
	"testing"

	"powerrchol"
)

// TestMethodTableCoversRegistry pins `pgsolve -method list` to the
// pipeline registry: every registered method appears as a row, every row
// name resolves back through MethodByName, and the header survives.
func TestMethodTableCoversRegistry(t *testing.T) {
	var sb strings.Builder
	printMethodTable(&sb)
	out := sb.String()

	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "METHOD") {
		t.Fatalf("table has no header:\n%s", out)
	}
	methods := powerrchol.Methods()
	if got, want := len(lines)-1, len(methods); got != want {
		t.Fatalf("table has %d rows, registry has %d methods:\n%s", got, want, out)
	}
	for i, mi := range methods {
		row := lines[i+1]
		if !strings.HasPrefix(row, mi.Name) {
			t.Errorf("row %d = %q, want method %q (registry order)", i, row, mi.Name)
		}
		m, err := powerrchol.MethodByName(mi.Name)
		if err != nil {
			t.Errorf("row name %q does not resolve: %v", mi.Name, err)
		} else if m != mi.Method {
			t.Errorf("MethodByName(%q) = %v, want %v", mi.Name, m, mi.Method)
		}
		if mi.Summary == "" {
			t.Errorf("method %q has no summary", mi.Name)
		}
	}
	// The compositions the CLI documents must stay visible in the table.
	for _, want := range []string{"powerrchol", "fegrass-ichol", "powerrush", "merge", "alg4", "lt-rchol"} {
		if !strings.Contains(out, want) {
			t.Errorf("table does not mention %q:\n%s", want, out)
		}
	}
}

// TestTransformFlagSpellings pins the -transform flag's vocabulary to
// the pipeline's TransformByName.
func TestTransformFlagSpellings(t *testing.T) {
	for _, name := range []string{"default", "none", "fegrass", "merge"} {
		if _, err := powerrchol.TransformByName(name); err != nil {
			t.Errorf("TransformByName(%q): %v", name, err)
		}
	}
	if _, err := powerrchol.TransformByName("bogus"); err == nil {
		t.Errorf("TransformByName(bogus) unexpectedly succeeded")
	}
}
