// Command pgsolve solves a power-grid or SDDM system with any of the
// solvers in this repository and reports timings, iteration counts and
// (for netlists) an IR-drop summary.
//
// Inputs:
//
//	pgsolve -netlist grid.sp [flags]        IBM-format SPICE netlist
//	pgsolve -matrix A.mtx [-rhs b.mtx]      Matrix Market SDDM (+ optional rhs)
//	pgsolve -case thupg1 [-scale f]         built-in benchmark case
//
// Flags select the method (-method list prints the full registry table),
// an optional transform-stage override (-transform none|fegrass|merge,
// composing e.g. PowerRush's contraction with a randomized
// preconditioner), tolerance and seed.
//
// Batch mode (-batch N) factorizes once and solves N deterministic load
// patterns derived from the base right-hand side, fanned across a worker
// pool (-workers, default NumCPU) via Solver.SolveBatch — the paper's
// many-load-patterns workload. -workers also parallelizes the kernels of
// a single solve when -batch is not given.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"powerrchol"
	"powerrchol/internal/cases"
	"powerrchol/internal/graph"
	"powerrchol/internal/powergrid"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
)

// Exit codes: 0 success, 1 bad input or I/O failure, 2 the solver gave up
// (recovery ladder exhausted, iteration cap, or timeout).
func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "pgsolve:", err)
		var se *powerrchol.SolveError
		if errors.As(err, &se) {
			fmt.Fprintln(os.Stderr, "attempt trail:")
			for _, a := range se.Attempts {
				fmt.Fprintf(os.Stderr, "  %s\n", a.String())
			}
		}
		if se != nil ||
			errors.Is(err, powerrchol.ErrNotConverged) ||
			errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, context.Canceled) {
			os.Exit(2)
		}
		os.Exit(1)
	}
}

func run() error {
	netlistPath := flag.String("netlist", "", "IBM-format SPICE netlist to solve")
	matrixPath := flag.String("matrix", "", "Matrix Market SDDM to solve")
	rhsPath := flag.String("rhs", "", "Matrix Market dense/coordinate Nx1 right-hand side (with -matrix)")
	caseName := flag.String("case", "", "built-in benchmark case name (e.g. thupg1)")
	scale := flag.Float64("scale", 1.0, "scale factor for -case")
	methodName := flag.String("method", "powerrchol", "solver method, or 'list' to print the registry table")
	transformName := flag.String("transform", "default", "transform-stage override: default|none|fegrass|merge")
	tol := flag.Float64("tol", 1e-6, "relative residual tolerance")
	maxIter := flag.Int("maxiter", 500, "PCG iteration cap")
	seed := flag.Uint64("seed", 2024, "randomized factorization seed")
	timeout := flag.Duration("timeout", 0, "abort the whole run after this duration (0 = no limit)")
	retries := flag.Int("retries", 1, "solve attempts before giving up (recovery ladder; 1 = no retry)")
	escalate := flag.Bool("escalate", true, "with -retries > 1, escalate to more robust methods on retry")
	batch := flag.Int("batch", 0, "solve N derived load patterns through one factorization (SolveBatch)")
	workers := flag.Int("workers", 0, "worker-pool size for -batch and parallel kernels (0 = NumCPU)")
	outPath := flag.String("out", "", "write node voltages here (IBM .solution format; netlist input only)")
	refPath := flag.String("ref", "", "compare against a golden .solution file (netlist input only)")
	flag.Parse()

	if *methodName == "list" {
		printMethodTable(os.Stdout)
		return nil
	}
	method, err := powerrchol.MethodByName(*methodName)
	if err != nil {
		return err
	}
	transform, err := powerrchol.TransformByName(*transformName)
	if err != nil {
		return err
	}
	opt := powerrchol.Options{
		Method: method, Transform: transform,
		Tol: *tol, MaxIter: *maxIter, Seed: *seed, Workers: *workers,
		Retry: powerrchol.RetryPolicy{MaxAttempts: *retries, Escalate: *escalate},
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		sys   *graph.SDDM
		b     []float64
		names func(int) string
	)
	switch {
	case *netlistPath != "":
		f, err := os.Open(*netlistPath)
		if err != nil {
			return err
		}
		defer f.Close()
		nl, err := powergrid.Parse(f)
		if err != nil {
			return err
		}
		s, err := nl.BuildSystem()
		if err != nil {
			return err
		}
		sys, b = s.Sys, s.B
		names = func(i int) string { return nl.NodeName(s.Unknown[i]) }
		fmt.Printf("netlist: %d nodes (%d pinned), %d resistors, %d loads\n",
			nl.NumNodes(), len(s.Fixed), len(nl.Resistors), len(nl.Currents))
	case *matrixPath != "":
		f, err := os.Open(*matrixPath)
		if err != nil {
			return err
		}
		defer f.Close()
		a, err := sparse.ReadMatrixMarket(f)
		if err != nil {
			return err
		}
		sys, err = graph.SplitCSC(a, 1e-12)
		if err != nil {
			return err
		}
		if *rhsPath != "" {
			rf, err := os.Open(*rhsPath)
			if err != nil {
				return err
			}
			defer rf.Close()
			bm, err := sparse.ReadMatrixMarket(rf)
			if err != nil {
				return err
			}
			if bm.Rows != sys.N() || bm.Cols != 1 {
				return fmt.Errorf("rhs is %dx%d, want %dx1", bm.Rows, bm.Cols, sys.N())
			}
			b = make([]float64, sys.N())
			for p := bm.ColPtr[0]; p < bm.ColPtr[1]; p++ {
				b[bm.RowIdx[p]] = bm.Val[p]
			}
		} else {
			r := rng.New(*seed)
			b = make([]float64, sys.N())
			for i := range b {
				b[i] = 2*r.Float64() - 1
			}
			fmt.Println("no -rhs given; using a deterministic random right-hand side")
		}
	case *caseName != "":
		c, err := cases.ByName(*caseName)
		if err != nil {
			return err
		}
		p, err := c.Build(*scale)
		if err != nil {
			return err
		}
		sys, b = p.Sys, p.B
	default:
		flag.Usage()
		return fmt.Errorf("one of -netlist, -matrix or -case is required")
	}

	if *batch > 0 {
		return runBatch(ctx, sys, b, opt, *batch, *tol)
	}

	fmt.Printf("system: n=%d nnz=%d, solving with %v (tol %.0e)\n",
		sys.N(), sys.NNZ(), method, *tol)
	res, err := powerrchol.SolveContext(ctx, sys, b, opt)
	if err != nil && res == nil {
		return err
	}
	fmt.Printf("reorder   %12v\n", res.Timings.Reorder)
	fmt.Printf("factorize %12v   |L| = %d\n", res.Timings.Factorize, res.FactorNNZ)
	fmt.Printf("iterate   %12v   %d iterations\n", res.Timings.Iterate, res.Iterations)
	fmt.Printf("total     %12v   residual %.3e converged=%v\n",
		res.Timings.Total(), res.Residual, res.Converged)
	if len(res.Attempts) > 1 {
		fmt.Printf("recovered after %d attempts:\n", len(res.Attempts))
		for _, a := range res.Attempts {
			fmt.Printf("  %s\n", a.String())
		}
	}
	if err != nil {
		return err
	}

	if names != nil {
		// worst IR drop against the highest pinned voltage
		worst, worstIdx := -1.0, -1
		var vdd float64
		for i := range res.X {
			if res.X[i] > vdd {
				vdd = res.X[i]
			}
		}
		for i, v := range res.X {
			if d := vdd - v; d > worst {
				worst, worstIdx = d, i
			}
		}
		if worstIdx >= 0 {
			fmt.Printf("worst IR drop: %.6f V at node %s\n", worst, names(worstIdx))
		}
		nodeNames := make([]string, len(res.X))
		for i := range nodeNames {
			nodeNames[i] = names(i)
		}
		if *outPath != "" {
			f, err := os.Create(*outPath)
			if err != nil {
				return err
			}
			if err := powergrid.WriteSolution(f, nodeNames, res.X); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %d node voltages to %s\n", len(res.X), *outPath)
		}
		if *refPath != "" {
			rf, err := os.Open(*refPath)
			if err != nil {
				return err
			}
			ref, err := powergrid.ReadSolution(rf)
			rf.Close()
			if err != nil {
				return err
			}
			mine := make(map[string]float64, len(res.X))
			for i, v := range res.X {
				mine[nodeNames[i]] = v
			}
			maxDiff, err := powergrid.CompareSolutions(mine, ref)
			if err != nil {
				return err
			}
			fmt.Printf("max deviation from %s: %.3e V\n", *refPath, maxDiff)
		}
	} else if *outPath != "" || *refPath != "" {
		return fmt.Errorf("-out/-ref require -netlist input (named nodes)")
	}
	return nil
}

// printMethodTable renders the pipeline registry — every method with its
// default stage composition — so the CLI's method list can never drift
// from what the library actually runs.
func printMethodTable(w io.Writer) {
	fmt.Fprintf(w, "%-14s %-10s %-9s %-9s %-7s %-9s %s\n",
		"METHOD", "TRANSFORM", "ORDERING", "FACTOR", "LADDER", "PREPARED", "SUMMARY")
	for _, mi := range powerrchol.Methods() {
		ordering := "-"
		if mi.Ordered {
			ordering = mi.Ordering.String()
		}
		fmt.Fprintf(w, "%-14s %-10s %-9s %-9s %-7v %-9v %s\n",
			mi.Name, mi.Transform, ordering, mi.Factor, mi.Ladder, mi.Prepared, mi.Summary)
	}
}

// runBatch factorizes once and solves `count` load patterns — the base
// right-hand side with each entry scaled by a deterministic per-pattern
// factor in [0.5, 1.5), the shape of a multi-corner IR-drop sweep.
func runBatch(ctx context.Context, sys *graph.SDDM, b []float64, opt powerrchol.Options, count int, tol float64) error {
	fmt.Printf("system: n=%d nnz=%d, batch of %d patterns with %v (tol %.0e)\n",
		sys.N(), sys.NNZ(), count, opt.Method, tol)
	solver, err := powerrchol.NewSolverContext(ctx, sys, opt)
	if err != nil {
		return err
	}
	if sa := solver.SetupAttempts(); len(sa) > 1 {
		fmt.Printf("setup recovered after %d attempts:\n", len(sa))
		for _, a := range sa {
			fmt.Printf("  %s\n", a.String())
		}
	}
	st := solver.SetupTimings()
	fmt.Printf("reorder   %12v\n", st.Reorder)
	fmt.Printf("factorize %12v   |L| = %d\n", st.Factorize, solver.FactorNNZ())

	rhs := make([][]float64, count)
	for k := range rhs {
		r := rng.New(opt.Seed + uint64(k)*0x9e37 + 1)
		p := make([]float64, len(b))
		for i, v := range b {
			p[i] = v * (0.5 + r.Float64())
		}
		rhs[k] = p
	}

	t0 := time.Now()
	results, err := solver.SolveBatchContext(ctx, rhs)
	elapsed := time.Since(t0)
	if err != nil {
		var be *powerrchol.BatchError
		if errors.As(err, &be) {
			for k, e := range be.Errs {
				if e != nil {
					fmt.Fprintf(os.Stderr, "pattern %d: %v\n", k, e)
				}
			}
		}
		return err
	}
	totalIters, worst := 0, 0.0
	for _, res := range results {
		totalIters += res.Iterations
		if res.Residual > worst {
			worst = res.Residual
		}
	}
	fmt.Printf("batch     %12v   %d workers, %d solves, %d PCG iterations total\n",
		elapsed, solver.BatchWorkers(), count, totalIters)
	fmt.Printf("throughput %.1f solves/sec, worst residual %.3e\n",
		float64(count)/elapsed.Seconds(), worst)
	return nil
}
