package powerrchol

import (
	"context"
	"errors"
	"math"
	"runtime"
	"testing"
	"time"

	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

// Partial-failure accounting for SolveBatchContext under cancellation:
// whatever instant the context dies, every right-hand side must be
// accounted for — a bitwise-correct Result or an error at its index in
// the BatchError, never silence — and the worker pool must wind down
// without leaking goroutines. The serve micro-batcher builds directly
// on this contract.

func batchCancelProblem(t *testing.T, nRHS int) (*Solver, [][]float64) {
	t.Helper()
	sys := testmat.GridSDDM(30, 30)
	solver, err := NewSolver(sys, Options{Method: MethodLTRChol, Seed: 3, Tol: 1e-10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(17)
	rhs := make([][]float64, nRHS)
	for i := range rhs {
		b := make([]float64, sys.N())
		for j := range b {
			b[j] = r.Float64() - 0.5
		}
		rhs[i] = b
	}
	return solver, rhs
}

// checkBatchAccounting enforces the invariant on a (results, err) pair:
// len(results) == len(rhs); a *BatchError has exactly one entry per
// right-hand side; every index either succeeded (nil error, non-nil
// bitwise-correct result) or carries an error.
func checkBatchAccounting(t *testing.T, solver *Solver, rhs [][]float64, results []*Result, err error) (succeeded, cancelled int) {
	t.Helper()
	if len(results) != len(rhs) {
		t.Fatalf("results has %d entries for %d rhs", len(results), len(rhs))
	}
	var errs []error
	if err != nil {
		var be *BatchError
		if !errors.As(err, &be) {
			t.Fatalf("batch error is %T, want *BatchError: %v", err, err)
		}
		if len(be.Errs) != len(rhs) {
			t.Fatalf("BatchError has %d entries for %d rhs", len(be.Errs), len(rhs))
		}
		errs = be.Errs
	} else {
		errs = make([]error, len(rhs))
	}
	for i := range rhs {
		switch {
		case errs[i] == nil:
			if results[i] == nil {
				t.Fatalf("rhs %d: no error and no result", i)
			}
			ref, refErr := solver.Solve(rhs[i])
			if refErr != nil {
				t.Fatalf("serial referee %d: %v", i, refErr)
			}
			for j := range ref.X {
				if math.Float64bits(results[i].X[j]) != math.Float64bits(ref.X[j]) {
					t.Fatalf("rhs %d: X[%d] differs from serial Solve", i, j)
				}
			}
			succeeded++
		case errors.Is(errs[i], context.Canceled) || errors.Is(errs[i], context.DeadlineExceeded):
			cancelled++
		default:
			t.Fatalf("rhs %d: unexpected error %v", i, errs[i])
		}
	}
	return succeeded, cancelled
}

func TestSolveBatchContextMidBatchCancellation(t *testing.T) {
	base := runtime.NumGoroutine()
	solver, rhs := batchCancelProblem(t, 64)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	var results []*Result
	var err error
	go func() {
		defer close(done)
		results, err = solver.SolveBatchContext(ctx, rhs)
	}()
	// Let a few solves land, then pull the plug mid-batch. (How many
	// land is scheduler- and race-detector-dependent; the accounting
	// invariant below holds at whatever instant the cancel arrives.)
	time.Sleep(8 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("SolveBatchContext did not return after cancellation")
	}

	succeeded, cancelled := checkBatchAccounting(t, solver, rhs, results, err)
	t.Logf("mid-batch cancel: %d succeeded, %d cancelled", succeeded, cancelled)
	if succeeded+cancelled != len(rhs) {
		t.Fatalf("%d+%d accounted of %d", succeeded, cancelled, len(rhs))
	}

	// The worker pool must be gone: poll until the goroutine count
	// settles back (the runtime's own goroutines add slack).
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Errorf("goroutines leaked: %d now vs %d at start", n, base)
	}
}

func TestSolveBatchContextPreCancelled(t *testing.T) {
	solver, rhs := batchCancelProblem(t, 8)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := solver.SolveBatchContext(ctx, rhs)
	if err == nil {
		t.Fatal("pre-cancelled batch returned no error")
	}
	succeeded, cancelled := checkBatchAccounting(t, solver, rhs, results, err)
	if cancelled != len(rhs) || succeeded != 0 {
		t.Fatalf("pre-cancelled batch: %d succeeded, %d cancelled, want 0/%d", succeeded, cancelled, len(rhs))
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("errors.Is(err, Canceled) false: %v", err)
	}
}

func TestSolveBatchContextDeadline(t *testing.T) {
	solver, rhs := batchCancelProblem(t, 64)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	results, err := solver.SolveBatchContext(ctx, rhs)
	succeeded, cancelled := checkBatchAccounting(t, solver, rhs, results, err)
	t.Logf("deadline: %d succeeded, %d deadline-exceeded", succeeded, cancelled)
}
