// General-SDD example: solving a symmetric diagonally dominant system
// with BOTH off-diagonal signs — beyond M-matrices — via the Gremban
// double-cover reduction built into the library (the same extension the
// RChol paper uses). The demo system is a resistor network with ideal
// voltage-inverting couplers (sign-flipped conductances), a structure
// that appears in coupled-line and mutual-inductance models.
//
//	go run ./examples/sddsolve
package main

import (
	"fmt"
	"log"
	"math"

	"powerrchol"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
)

func main() {
	const n = 4000
	r := rng.New(99)

	// Ring of positive couplings plus random sign-flipped couplers, with
	// diagonal dominance enforced row by row.
	coo := sparse.NewCOO(n, n, 8*n)
	offSum := make([]float64, n)
	add := func(i, j int, v float64) {
		coo.AddSym(i, j, v)
		offSum[i] += math.Abs(v)
		offSum[j] += math.Abs(v)
	}
	for i := 0; i < n; i++ {
		add(i, (i+1)%n, -(0.5 + r.Float64())) // regular resistive links
	}
	flipped := 0
	for k := 0; k < 2*n; k++ {
		i, j := r.Intn(n), r.Intn(n)
		if i == j {
			continue
		}
		v := 0.2 + 0.8*r.Float64()
		if r.Float64() < 0.5 {
			v = -v
		} else {
			flipped++
		}
		add(i, j, v)
	}
	for i := 0; i < n; i++ {
		coo.Add(i, i, offSum[i]+0.05+0.1*r.Float64())
	}
	a := coo.ToCSC()

	b := make([]float64, n)
	for i := range b {
		b[i] = r.Float64() - 0.5
	}

	fmt.Printf("SDD system: n=%d, nnz=%d, %d positive (inverting) couplings\n",
		n, a.NNZ(), flipped)
	res, err := powerrchol.SolveSDD(a, b, powerrchol.Options{
		Method: powerrchol.MethodPowerRChol, Tol: 1e-10, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved the 2n=%d double cover in %d PCG iterations, %v\n",
		2*n, res.Iterations, res.Timings.Total())

	// Verify against the original operator.
	y := make([]float64, n)
	a.MulVec(y, res.X)
	var num, den float64
	for i := range y {
		d := y[i] - b[i]
		num += d * d
		den += b[i] * b[i]
	}
	rel := math.Sqrt(num / den)
	fmt.Printf("true residual on the ORIGINAL system: %.2e\n", rel)
	if rel > 1e-8 {
		log.Fatal("double-cover recovery failed")
	}
	fmt.Println("general-SDD solve verified")
}
