// Quickstart: build a small power grid, solve it with PowerRChol, and
// compare against the direct solver.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"powerrchol"
	"powerrchol/internal/powergrid"
)

func main() {
	// A 64x64, 4-layer power grid: ~10k nodes, C4 pads on top, current
	// loads on the bottom layer.
	grid, err := powergrid.Generate(powergrid.Spec{
		NX: 64, NY: 64, Layers: 4, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d nodes, %d resistors, %d pads\n",
		grid.N(), grid.Sys.G.M(), len(grid.PadNodes))

	// Solve G·v = b with the paper's solver: Alg. 4 reordering + LT-RChol
	// preconditioned conjugate gradients.
	res, err := powerrchol.Solve(grid.Sys, grid.B, powerrchol.Options{
		Method: powerrchol.MethodPowerRChol,
		Tol:    1e-6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PowerRChol: %d PCG iterations, residual %.2e, total %v\n",
		res.Iterations, res.Residual, res.Timings.Total())
	fmt.Printf("  reorder %v | factorize %v (|L|=%d) | iterate %v\n",
		res.Timings.Reorder, res.Timings.Factorize, res.FactorNNZ, res.Timings.Iterate)

	// Cross-check against a complete sparse Cholesky direct solve.
	direct, err := powerrchol.Solve(grid.Sys, grid.B, powerrchol.Options{
		Method: powerrchol.MethodDirect,
	})
	if err != nil {
		log.Fatal(err)
	}
	var maxDiff float64
	for i := range res.X {
		if d := abs(res.X[i] - direct.X[i]); d > maxDiff {
			maxDiff = d
		}
	}
	fmt.Printf("direct solve agrees to %.2e V (direct total %v)\n",
		maxDiff, direct.Timings.Total())

	rep := grid.IRDrop(res.X)
	fmt.Printf("worst IR drop %.4f V at %s; average %.4f V\n",
		rep.WorstDrop, grid.NodeName(rep.WorstNode), rep.AvgDrop)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
