// IR-drop signoff example: generate a large multi-layer grid, solve it
// with every power-grid solver in the repository, verify they agree, and
// print an IR-drop report with the worst hotspots — the workload the
// paper's introduction motivates.
//
//	go run ./examples/irdrop
package main

import (
	"fmt"
	"log"
	"sort"

	"powerrchol"
	"powerrchol/internal/powergrid"
)

func main() {
	grid, err := powergrid.Generate(powergrid.Spec{
		NX: 180, NY: 180, Layers: 5,
		PadPitch: 32,
		LoadFrac: 0.4,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("grid: %d nodes, %d resistors (nnz %d), Vdd %.2f V\n\n",
		grid.N(), grid.Sys.G.M(), grid.Sys.NNZ(), grid.Spec.Vdd)

	methods := []powerrchol.Method{
		powerrchol.MethodPowerRChol,
		powerrchol.MethodRChol,
		powerrchol.MethodFeGRASS,
		powerrchol.MethodAMG,
		powerrchol.MethodPowerRush,
	}
	fmt.Printf("%-12s %10s %6s %12s %12s\n", "method", "iters", "conv", "total", "worst drop")
	var reference []float64
	for _, m := range methods {
		res, err := powerrchol.Solve(grid.Sys, grid.B, powerrchol.Options{
			Method: m, Tol: 1e-8, MaxIter: 1000, Seed: 1,
		})
		if err != nil {
			fmt.Printf("%-12v %s\n", m, err)
			continue
		}
		rep := grid.IRDrop(res.X)
		fmt.Printf("%-12v %10d %6v %12v %10.4fV\n",
			m, res.Iterations, res.Converged, res.Timings.Total(), rep.WorstDrop)
		if reference == nil {
			reference = res.X
		} else {
			var maxDiff float64
			for i := range res.X {
				d := res.X[i] - reference[i]
				if d < 0 {
					d = -d
				}
				if d > maxDiff {
					maxDiff = d
				}
			}
			if maxDiff > 1e-4 {
				log.Fatalf("%v deviates from reference by %g V", m, maxDiff)
			}
		}
	}

	// Hotspot report from the reference solution.
	type hotspot struct {
		node int
		drop float64
	}
	var hs []hotspot
	for i, v := range reference {
		if grid.Layer[i] == 0 {
			hs = append(hs, hotspot{i, grid.Spec.Vdd - v})
		}
	}
	sort.Slice(hs, func(a, b int) bool { return hs[a].drop > hs[b].drop })
	fmt.Println("\ntop 5 IR-drop hotspots (bottom layer):")
	for _, h := range hs[:5] {
		fmt.Printf("  %-14s %.4f V (%.1f%% of Vdd)\n",
			grid.NodeName(h.node), h.drop, 100*h.drop/grid.Spec.Vdd)
	}
	rep := grid.IRDrop(reference)
	fmt.Printf("\ncurrent balance: loads draw %.4f A, pads deliver %.4f A\n",
		rep.TotalLoad, rep.PadCurrent)
}
