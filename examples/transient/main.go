// Transient power-grid analysis example: an RC grid integrated with
// backward Euler through a load surge. The backward-Euler matrix
// G + C/h is an SDDM factorized ONCE by PowerRChol and reused for every
// time step — the amortization that makes randomized-Cholesky
// preconditioning attractive for transient signoff.
//
//	go run ./examples/transient
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"powerrchol"
	"powerrchol/internal/powergrid"
)

func main() {
	grid, err := powergrid.Generate(powergrid.Spec{
		NX: 120, NY: 120, Layers: 4,
		PadPitch: 24, LoadFrac: 0.35, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	ts := powergrid.TransientSpec{
		Steps:    80,
		TimeStep: 2e-11,
		Seed:     3,
	}
	sys, _, err := grid.TransientSystem(ts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RC grid: %d nodes, %d resistors; h = %.0e s, %d steps (surge at %d)\n",
		grid.N(), grid.Sys.G.M(), ts.TimeStep, ts.Steps, ts.Steps/2)

	// Factorize G + C/h once; reuse across all steps.
	t0 := time.Now()
	solver, err := powerrchol.NewSolver(sys, powerrchol.Options{
		Method: powerrchol.MethodPowerRChol, Tol: 1e-8, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	setup := time.Since(t0)

	// Warm-start each step from the previous solution: consecutive
	// voltage profiles differ little, so PCG needs far fewer iterations.
	var prev []float64
	t0 = time.Now()
	res, err := grid.RunTransient(ts, func(b []float64) ([]float64, int, error) {
		r, err := solver.SolveFrom(b, prev)
		if err != nil {
			return nil, 0, err
		}
		prev = r.X
		return r.X, r.Iterations, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	stepping := time.Since(t0)

	peak, at := res.PeakDrop()
	fmt.Printf("setup (reorder+factorize) %v; %d steps in %v (%.2f ms/step, %.1f PCG iters/step)\n",
		setup.Round(time.Millisecond), ts.Steps, stepping.Round(time.Millisecond),
		float64(stepping.Milliseconds())/float64(ts.Steps),
		float64(res.TotalIters)/float64(ts.Steps))
	fmt.Printf("peak droop %.4f V at t = %.2e s (step %d)\n\n", peak, res.Times[at], at+1)

	// ASCII waveform of the worst bottom-layer droop.
	fmt.Println("worst IR droop waveform (V):")
	for i, d := range res.WorstDrop {
		bar := int(d / peak * 56)
		marker := ""
		if i+1 == ts.Steps/2 {
			marker = "  <- surge (all loads on)"
		}
		fmt.Printf("t=%7.2fps %7.4f %s%s\n",
			res.Times[i]*1e12, d, strings.Repeat("#", bar), marker)
	}
}
