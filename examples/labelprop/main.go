// Graph-based semi-supervised learning example (paper §1 cites it as an
// SDDM application): harmonic label propagation on a similarity graph.
// Given a few labeled seeds, the remaining labels solve the Dirichlet
// problem (L + λI)·f = λ·y, an SDDM system — here on a two-moons-style
// point cloud, solved with PowerRChol.
//
//	go run ./examples/labelprop
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"powerrchol"
	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
)

const (
	pointsPerMoon = 3000
	kNeighbors    = 8
	seedsPerClass = 10
	lambda        = 1.0 // label-fidelity weight on the seeds
)

type point struct{ x, y float64 }

func main() {
	r := rng.New(5)
	pts, truth := twoMoons(r)
	n := len(pts)

	g := knnGraph(pts, kNeighbors)
	fmt.Printf("similarity graph: %d points, %d edges (k=%d)\n", n, g.M(), kNeighbors)

	// Seeds: the only supervision. Slack λ on seed nodes makes the system
	// an SDDM; b carries λ·(±1) seed labels.
	d := make([]float64, n)
	b := make([]float64, n)
	for class := 0; class < 2; class++ {
		placed := 0
		for placed < seedsPerClass {
			i := r.Intn(n)
			if truth[i] == class && d[i] == 0 {
				d[i] = lambda
				if class == 0 {
					b[i] = -lambda
				} else {
					b[i] = lambda
				}
				placed++
			}
		}
	}
	sys, err := graph.NewSDDM(g, d)
	if err != nil {
		log.Fatal(err)
	}

	res, err := powerrchol.Solve(sys, b, powerrchol.Options{
		Method: powerrchol.MethodPowerRChol, Tol: 1e-8, Seed: 1,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("harmonic solve: %d PCG iterations, %v\n",
		res.Iterations, res.Timings.Total())

	correct := 0
	for i, f := range res.X {
		pred := 0
		if f > 0 {
			pred = 1
		}
		if pred == truth[i] {
			correct++
		}
	}
	acc := 100 * float64(correct) / float64(n)
	fmt.Printf("accuracy with %d labels per class: %.1f%% (%d/%d)\n",
		seedsPerClass, acc, correct, n)
	if acc < 90 {
		log.Fatalf("label propagation accuracy %.1f%% is implausibly low", acc)
	}
}

// twoMoons samples the classic interleaved half-circles with noise.
func twoMoons(r *rng.Rand) ([]point, []int) {
	n := 2 * pointsPerMoon
	pts := make([]point, 0, n)
	truth := make([]int, 0, n)
	for i := 0; i < pointsPerMoon; i++ {
		t := math.Pi * r.Float64()
		pts = append(pts, point{
			x: math.Cos(t) + 0.08*r.NormFloat64(),
			y: math.Sin(t) + 0.08*r.NormFloat64(),
		})
		truth = append(truth, 0)
		pts = append(pts, point{
			x: 1 - math.Cos(t) + 0.08*r.NormFloat64(),
			y: 0.5 - math.Sin(t) + 0.08*r.NormFloat64(),
		})
		truth = append(truth, 1)
	}
	return pts, truth
}

// knnGraph links each point to its k nearest neighbors with Gaussian
// similarity weights, using a uniform grid for neighbor search.
func knnGraph(pts []point, k int) *graph.Graph {
	n := len(pts)
	const cell = 0.15
	buckets := map[[2]int][]int{}
	for i, p := range pts {
		key := [2]int{int(math.Floor(p.x / cell)), int(math.Floor(p.y / cell))}
		buckets[key] = append(buckets[key], i)
	}
	g := graph.New(n, n*k)
	type cand struct {
		j    int
		dist float64
	}
	var cs []cand
	for i, p := range pts {
		cs = cs[:0]
		base := [2]int{int(math.Floor(p.x / cell)), int(math.Floor(p.y / cell))}
		for dx := -2; dx <= 2; dx++ {
			for dy := -2; dy <= 2; dy++ {
				for _, j := range buckets[[2]int{base[0] + dx, base[1] + dy}] {
					if j == i {
						continue
					}
					d := (p.x-pts[j].x)*(p.x-pts[j].x) + (p.y-pts[j].y)*(p.y-pts[j].y)
					cs = append(cs, cand{j, d})
				}
			}
		}
		sort.Slice(cs, func(a, b int) bool { return cs[a].dist < cs[b].dist })
		lim := k
		if lim > len(cs) {
			lim = len(cs)
		}
		for _, c := range cs[:lim] {
			if i < c.j { // add each pair once; kNN asymmetry folds by Coalesce
				g.MustAddEdge(i, c.j, math.Exp(-c.dist/(2*0.1*0.1)))
			}
		}
	}
	out := g.Coalesce()
	return out
}
