// 3-D thermal simulation example (paper §1 lists thermal analysis as an
// SDDM application): steady-state heat conduction on a chip stack
// discretized with a 7-point stencil, heat sources from the power map,
// isothermal heat-sink boundary on top. The resulting SDDM is solved with
// PowerRChol and the hottest cells are reported.
//
//	go run ./examples/thermal3d
package main

import (
	"fmt"
	"log"

	"powerrchol"
	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
)

const (
	nx, ny, nz = 60, 60, 8
	kSi        = 0.8  // thermal conductance between adjacent cells (W/K, lumped)
	kSink      = 0.15 // conductance from a top-layer cell into the heat sink
	tAmbient   = 45.0 // heat-sink temperature (°C)
)

func id(x, y, z int) int { return (z*ny+y)*nx + x }

func main() {
	n := nx * ny * nz
	g := graph.New(n, 3*n)
	for z := 0; z < nz; z++ {
		for y := 0; y < ny; y++ {
			for x := 0; x < nx; x++ {
				if x+1 < nx {
					g.MustAddEdge(id(x, y, z), id(x+1, y, z), kSi)
				}
				if y+1 < ny {
					g.MustAddEdge(id(x, y, z), id(x, y+1, z), kSi)
				}
				if z+1 < nz {
					g.MustAddEdge(id(x, y, z), id(x, y, z+1), kSi)
				}
			}
		}
	}
	// Heat sink couples every top-layer cell to ambient: diagonal slack,
	// with k·T_ambient entering the right-hand side.
	d := make([]float64, n)
	b := make([]float64, n)
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			c := id(x, y, nz-1)
			d[c] = kSink
			b[c] = kSink * tAmbient
		}
	}
	// Power map: a uniform background plus three hot blocks on the die
	// bottom (the active silicon layer).
	r := rng.New(11)
	blocks := [][4]int{{8, 8, 18, 18}, {35, 12, 52, 24}, {20, 38, 44, 54}}
	var totalPower float64
	for y := 0; y < ny; y++ {
		for x := 0; x < nx; x++ {
			p := 0.02 + 0.01*r.Float64() // W background
			for _, blk := range blocks {
				if x >= blk[0] && y >= blk[1] && x <= blk[2] && y <= blk[3] {
					p += 0.9
				}
			}
			b[id(x, y, 0)] += p
			totalPower += p
		}
	}

	sys, err := graph.NewSDDM(g, d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thermal grid: %dx%dx%d = %d cells, %.0f W total\n",
		nx, ny, nz, n, totalPower)

	res, err := powerrchol.Solve(sys, b, powerrchol.Options{
		Method: powerrchol.MethodPowerRChol, Tol: 1e-8, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved in %d PCG iterations, %v total (residual %.1e)\n",
		res.Iterations, res.Timings.Total(), res.Residual)

	tMax, tMin, hotCell := 0.0, 1e30, 0
	for i, t := range res.X {
		if t > tMax {
			tMax, hotCell = t, i
		}
		if t < tMin {
			tMin = t
		}
	}
	hz := hotCell / (nx * ny)
	hy := (hotCell / nx) % ny
	hx := hotCell % nx
	fmt.Printf("temperature range: %.1f°C .. %.1f°C (ambient %.1f°C)\n", tMin, tMax, tAmbient)
	fmt.Printf("hottest cell at (%d,%d,layer %d): %.1f°C\n", hx, hy, hz, tMax)
	if tMax < tAmbient {
		log.Fatal("physics violated: die colder than the heat sink")
	}

	// Vertical profile under the hotspot: temperature must decrease
	// monotonically toward the sink.
	fmt.Print("vertical profile under hotspot:")
	prev := 1e30
	for z := 0; z < nz; z++ {
		t := res.X[id(hx, hy, z)]
		fmt.Printf(" %.1f", t)
		if t > prev+1e-9 {
			log.Fatal("\nphysics violated: temperature rising toward the heat sink")
		}
		prev = t
	}
	fmt.Println(" °C")
}
