package powerrchol

import (
	"math"
	"sync"
	"testing"

	"powerrchol/internal/rng"
)

// Concurrency suite: SolveBatch and concurrent preconditioner Apply
// calls across every method NewSolver supports. Run it under
// `go test -race` (`make race`) — the assertions catch wrong results,
// the race detector catches unsynchronized scratch sharing.

// batchMethods are the methods exercised by the batch/concurrency suite:
// everything NewSolver supports except the stationary baselines, plus
// those too (they are cheap and their Apply must be re-entrant as well).
var batchMethods = []Method{
	MethodPowerRChol, MethodRChol, MethodLTRChol,
	MethodFeGRASS, MethodFeGRASSIChol, MethodAMG, MethodDirect,
	MethodJacobi, MethodSSOR,
}

func batchRHS(n, count int, seed uint64) [][]float64 {
	r := rng.New(seed)
	rhs := make([][]float64, count)
	for k := range rhs {
		b := make([]float64, n)
		for i := range b {
			b[i] = r.Float64() - 0.5
		}
		rhs[k] = b
	}
	return rhs
}

func assertBitwise(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d, want %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s: entry %d = %v, want %v (not bitwise equal, Δ=%g)",
				what, i, got[i], want[i], math.Abs(got[i]-want[i]))
		}
	}
}

// TestSolveBatchMatchesSerial: every batch solution must match the
// serial Solve result to 1e-12 (in fact bit for bit: batch solves run
// the identical serial code path, only fanned across goroutines).
func TestSolveBatchMatchesSerial(t *testing.T) {
	s, _, _ := testProblem(t)
	rhs := batchRHS(s.N(), 6, 31)
	for _, m := range batchMethods {
		solver, err := NewSolver(s, Options{Method: m, Tol: 1e-8, MaxIter: 3000, Seed: 7, Workers: 4})
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		serial := make([]*Result, len(rhs))
		for i, b := range rhs {
			if serial[i], err = solver.Solve(b); err != nil {
				t.Fatalf("%v: serial solve %d: %v", m, i, err)
			}
		}
		batch, err := solver.SolveBatch(rhs)
		if err != nil {
			t.Errorf("%v: SolveBatch: %v", m, err)
			continue
		}
		for i := range rhs {
			if batch[i].Iterations != serial[i].Iterations {
				t.Errorf("%v: rhs %d: batch took %d iterations, serial %d",
					m, i, batch[i].Iterations, serial[i].Iterations)
			}
			for j := range batch[i].X {
				if d := math.Abs(batch[i].X[j] - serial[i].X[j]); d > 1e-12 {
					t.Errorf("%v: rhs %d: batch deviates from serial at %d by %g", m, i, j, d)
					break
				}
			}
		}
	}
}

// TestConcurrentPreconditionerApply hammers each method's Apply from
// many goroutines at once. Apply must be re-entrant (pooled scratch, no
// shared work arrays) and produce the exact serial result.
func TestConcurrentPreconditionerApply(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, m := range batchMethods {
		solver, err := NewSolver(s, Options{Method: m, Seed: 7, Workers: 2})
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		want := make([]float64, s.N())
		solver.m.Apply(want, b)

		const goroutines = 8
		const repeats = 20
		var wg sync.WaitGroup
		errc := make(chan string, goroutines)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				z := make([]float64, len(b))
				for rep := 0; rep < repeats; rep++ {
					solver.m.Apply(z, b)
					for i := range z {
						if math.Float64bits(z[i]) != math.Float64bits(want[i]) {
							errc <- m.String()
							return
						}
					}
				}
			}()
		}
		wg.Wait()
		close(errc)
		for name := range errc {
			t.Fatalf("%s: concurrent Apply produced a different result than serial Apply", name)
		}
	}
}

// TestConcurrentSolveSameSolver: plain Solve calls on one shared Solver
// from many goroutines must behave exactly like sequential calls.
func TestConcurrentSolveSameSolver(t *testing.T) {
	s, _, _ := testProblem(t)
	solver, err := NewSolver(s, Options{Method: MethodPowerRChol, Tol: 1e-8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rhs := batchRHS(s.N(), 8, 55)
	want := make([]*Result, len(rhs))
	for i, b := range rhs {
		if want[i], err = solver.Solve(b); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	got := make([]*Result, len(rhs))
	errs := make([]error, len(rhs))
	for i := range rhs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i], errs[i] = solver.Solve(rhs[i])
		}(i)
	}
	wg.Wait()
	for i := range rhs {
		if errs[i] != nil {
			t.Fatalf("concurrent solve %d: %v", i, errs[i])
		}
		assertBitwise(t, "concurrent Solve", got[i].X, want[i].X)
	}
}

// TestSolveBatchValidation: length mismatches are rejected up front, the
// empty batch is a no-op, and a single-RHS batch equals Solve.
func TestSolveBatchValidation(t *testing.T) {
	s, b, _ := testProblem(t)
	solver, err := NewSolver(s, Options{Method: MethodPowerRChol, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := solver.SolveBatch([][]float64{b, make([]float64, 3)}); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
	empty, err := solver.SolveBatch(nil)
	if err != nil || len(empty) != 0 {
		t.Fatalf("empty batch: got %d results, err %v", len(empty), err)
	}
	one, err := solver.SolveBatch([][]float64{b})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := solver.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	assertBitwise(t, "single-RHS batch", one[0].X, ref.X)
}

// TestBatchWorkersDefault: Workers=0 falls back to NumCPU, an explicit
// setting wins.
func TestBatchWorkersDefault(t *testing.T) {
	s, _, _ := testProblem(t)
	def, err := NewSolver(s, Options{Method: MethodPowerRChol, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if def.BatchWorkers() < 1 {
		t.Fatalf("default BatchWorkers = %d", def.BatchWorkers())
	}
	pinned, err := NewSolver(s, Options{Method: MethodPowerRChol, Seed: 7, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if pinned.BatchWorkers() != 3 {
		t.Fatalf("BatchWorkers = %d, want 3", pinned.BatchWorkers())
	}
}
