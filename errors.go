package powerrchol

import (
	"errors"
	"fmt"
	"strings"

	"powerrchol/internal/pipeline"
)

// ErrNotConverged is the sentinel matched by errors.Is when the iteration
// cap is reached. The concrete error is a *NotConvergedError carrying the
// achieved residual, the iterations used and the method that ran; the
// Result is still populated so callers can inspect the partial solve.
var ErrNotConverged = errors.New("powerrchol: PCG did not converge within the iteration limit")

// NotConvergedError reports a solve that ran out of iterations. It
// matches errors.Is(err, ErrNotConverged).
type NotConvergedError struct {
	Method     Method  // the method (final ladder rung) that ran
	Iterations int     // iterations actually used
	Residual   float64 // best relative residual achieved
	Tol        float64 // the target it missed
}

func (e *NotConvergedError) Error() string {
	return fmt.Sprintf("powerrchol: %v did not converge: relative residual %.3e after %d iterations (target %.0e)",
		e.Method, e.Residual, e.Iterations, e.Tol)
}

// Is makes errors.Is(err, ErrNotConverged) succeed for this type.
func (e *NotConvergedError) Is(target error) bool { return target == ErrNotConverged }

// Attempt records one rung of the recovery ladder: which configuration
// ran, and how it ended. A trail of Attempts appears in Result.Attempts
// on success and in SolveError.Attempts when every rung failed. It
// aliases the pipeline's record type: the Runner produces the trail,
// this package only reports it.
type Attempt = pipeline.Attempt

// SolveError reports that every rung of the recovery ladder failed. The
// attempt trail says what was tried and why each rung died; Unwrap
// exposes the final attempt's error so errors.Is/As keep working (e.g.
// errors.Is(err, ErrNotConverged) or matching core.ErrBreakdown).
type SolveError struct {
	Attempts []Attempt
	Last     error // the final attempt's error
}

func (e *SolveError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "powerrchol: all %d solve attempts failed (last: %v)", len(e.Attempts), e.Last)
	for i, a := range e.Attempts {
		fmt.Fprintf(&sb, "\n  attempt %d: %v", i+1, a)
	}
	return sb.String()
}

func (e *SolveError) Unwrap() error { return e.Last }

// BatchError aggregates per-RHS failures from SolveBatch: Errs has one
// entry per right-hand side, nil where the solve succeeded. Unwrap
// exposes the lowest-indexed failure, preserving the historical
// behaviour of SolveBatch returning that error directly.
type BatchError struct {
	Errs []error
}

func (e *BatchError) Error() string {
	failed := 0
	first := -1
	for i, err := range e.Errs {
		if err != nil {
			failed++
			if first < 0 {
				first = i
			}
		}
	}
	return fmt.Sprintf("powerrchol: %d of %d batch solves failed (first: rhs %d: %v)",
		failed, len(e.Errs), first, e.Errs[first])
}

func (e *BatchError) Unwrap() error {
	for _, err := range e.Errs {
		if err != nil {
			return err
		}
	}
	return nil
}
