package powerrchol

import (
	"errors"
	"math"
	"testing"

	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
	"powerrchol/internal/sparse"
	"powerrchol/internal/testmat"
)

var allMethods = []Method{
	MethodPowerRChol, MethodRChol, MethodLTRChol,
	MethodFeGRASS, MethodFeGRASSIChol,
	MethodAMG, MethodPowerRush, MethodDirect, MethodJacobi, MethodSSOR,
}

func testProblem(t *testing.T) (*graph.SDDM, []float64, []float64) {
	t.Helper()
	s := testmat.GridSDDM(28, 28)
	r := rng.New(44)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	want, err := testmat.DenseSolveSPD(s.ToCSC().Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	return s, b, want
}

func TestEveryMethodSolvesTheGrid(t *testing.T) {
	s, b, want := testProblem(t)
	for _, m := range allMethods {
		res, err := Solve(s, b, Options{Method: m, Tol: 1e-10, MaxIter: 3000})
		if err != nil {
			t.Errorf("%v: %v", m, err)
			continue
		}
		if !res.Converged {
			t.Errorf("%v: not converged (res %g)", m, res.Residual)
			continue
		}
		var maxErr float64
		for i := range want {
			if e := math.Abs(res.X[i] - want[i]); e > maxErr {
				maxErr = e
			}
		}
		// PowerRush contracts nothing on a uniform grid so even it must
		// match the exact solution here.
		if maxErr > 1e-6 {
			t.Errorf("%v: solution off by %g", m, maxErr)
		}
		if m != MethodDirect && res.Iterations == 0 {
			t.Errorf("%v: zero iterations reported", m)
		}
		if tot := res.Timings.Total(); tot <= 0 {
			t.Errorf("%v: non-positive total time %v", m, tot)
		}
	}
}

func TestSolveCSCRoundTrip(t *testing.T) {
	s, b, want := testProblem(t)
	res, err := SolveCSC(s.ToCSC(), b, Options{Tol: 1e-10, MaxIter: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("x[%d] = %g, want %g", i, res.X[i], want[i])
		}
	}
}

func TestNotConvergedIsReported(t *testing.T) {
	s, b, _ := testProblem(t)
	res, err := Solve(s, b, Options{Method: MethodJacobi, Tol: 1e-14, MaxIter: 2})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("got %v, want ErrNotConverged", err)
	}
	if res == nil || res.Converged || res.Iterations != 2 {
		t.Fatalf("partial result not populated: %+v", res)
	}
}

func TestOrderingOverride(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, o := range []Ordering{OrderAlg4, OrderAMD, OrderNatural, OrderRCM} {
		res, err := Solve(s, b, Options{Method: MethodLTRChol, Ordering: o})
		if err != nil || !res.Converged {
			t.Errorf("ordering %v: err=%v", o, err)
		}
	}
}

func TestRHSLengthValidated(t *testing.T) {
	s, _, _ := testProblem(t)
	if _, err := Solve(s, make([]float64, 3), Options{}); err == nil {
		t.Fatal("wrong-length rhs accepted")
	}
}

func TestMethodNamesRoundTrip(t *testing.T) {
	for _, m := range allMethods {
		got, err := MethodByName(m.String())
		if err != nil || got != m {
			t.Errorf("MethodByName(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := MethodByName("nope"); err == nil {
		t.Error("unknown method name accepted")
	}
	if Ordering(99).String() == "" || Method(99).String() == "" {
		t.Error("unknown enums must still format")
	}
}

func TestPowerRushOnViaHeavyGrid(t *testing.T) {
	// Build a grid with short segments so PowerRush actually contracts,
	// then check its answer against plain AMG on the full system.
	r := rng.New(3)
	g := testmat.Grid2D(20, 20)
	for k := 0; k < 30; k++ {
		u := r.Intn(20*20 - 1)
		g.MustAddEdge(u, u+1, 1e6)
	}
	d := make([]float64, 20*20)
	for i := 0; i < 20; i++ {
		d[i] = 1
	}
	s, err := graph.NewSDDM(g, d)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, s.N())
	for i := range b {
		b[i] = 0.01 * (r.Float64() - 0.5)
	}
	full, err := Solve(s, b, Options{Method: MethodAMG, Tol: 1e-10, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	rush, err := Solve(s, b, Options{Method: MethodPowerRush, Tol: 1e-10, MaxIter: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(rush.X) != s.N() {
		t.Fatalf("PowerRush did not expand the solution: %d", len(rush.X))
	}
	scale := sparse.NormInf(full.X)
	for i := range full.X {
		if math.Abs(full.X[i]-rush.X[i]) > 1e-4*scale {
			t.Fatalf("PowerRush deviates at %d: %g vs %g", i, rush.X[i], full.X[i])
		}
	}
}

func TestDirectResidualExact(t *testing.T) {
	s, b, _ := testProblem(t)
	res, err := Solve(s, b, Options{Method: MethodDirect})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-12 {
		t.Fatalf("direct solve residual %g", res.Residual)
	}
	if res.FactorNNZ == 0 {
		t.Fatal("direct solve must report factor nnz")
	}
}

func TestWorkersProduceIdenticalResults(t *testing.T) {
	s, b, _ := testProblem(t)
	serial, err := Solve(s, b, Options{Method: MethodPowerRChol, Seed: 3, Tol: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Solve(s, b, Options{Method: MethodPowerRChol, Seed: 3, Tol: 1e-10, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Iterations != parallel.Iterations {
		t.Fatalf("parallel SpMV changed the iteration count: %d vs %d",
			serial.Iterations, parallel.Iterations)
	}
	for i := range serial.X {
		if serial.X[i] != parallel.X[i] {
			t.Fatalf("parallel SpMV changed the result at %d", i)
		}
	}
}
