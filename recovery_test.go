package powerrchol

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"powerrchol/internal/core"
	"powerrchol/internal/faultinject"
	"powerrchol/internal/pcg"
	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

// Recovery suite: deterministic fault injection (internal/faultinject)
// drives the escalation ladder through every failure mode the paper's
// probabilistic pipeline can hit — factorization breakdown, indefinite
// preconditioner, NaN propagation, stagnation — and checks that each one
// ends in a converged solve with a faithful diagnostic trail. Runs under
// `make race` like the rest of the suite-level tests.

// retryOpt is the standard recovery configuration used by these tests.
func retryOpt() Options {
	return Options{
		Method: MethodPowerRChol,
		Tol:    1e-8,
		Seed:   11,
		Retry:  RetryPolicy{MaxAttempts: 3, Escalate: true},
	}
}

// failFirstFactor injects a factorization fault into attempt 0 only.
func failFirstFactor(perturb func(int, float64) float64) *FaultHooks {
	return &FaultHooks{
		FactorOpts: func(attempt int, o core.Options) core.Options {
			if attempt == 0 {
				o.PivotPerturb = perturb
			}
			return o
		},
	}
}

// failPrecond injects a preconditioner fault into the given attempts.
func failPrecond(mode faultinject.Mode, attempts ...int) *FaultHooks {
	bad := make(map[int]bool, len(attempts))
	for _, a := range attempts {
		bad[a] = true
	}
	return &FaultHooks{
		WrapPrecond: func(attempt int, m pcg.Preconditioner) pcg.Preconditioner {
			if !bad[attempt] {
				return m
			}
			return &faultinject.Preconditioner{Inner: m, Mode: mode, Seed: 99}
		},
	}
}

func checkRecovered(t *testing.T, res *Result, err error, wantFailures int, wantInTrail string) {
	t.Helper()
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	if !res.Converged {
		t.Fatalf("recovered solve did not converge: residual %g", res.Residual)
	}
	if len(res.Attempts) != wantFailures+1 {
		t.Fatalf("attempt trail has %d entries, want %d: %v", len(res.Attempts), wantFailures+1, res.Attempts)
	}
	for i := 0; i < wantFailures; i++ {
		if res.Attempts[i].Err == "" {
			t.Fatalf("attempt %d should be recorded as failed: %v", i, res.Attempts[i])
		}
	}
	last := res.Attempts[len(res.Attempts)-1]
	if last.Err != "" {
		t.Fatalf("final attempt recorded as failed: %v", last)
	}
	joined := ""
	for _, a := range res.Attempts {
		joined += a.Err + "\n"
	}
	if !strings.Contains(joined, wantInTrail) {
		t.Fatalf("trail %q does not mention %q", joined, wantInTrail)
	}
}

func TestRecoveryFromInjectedBreakdown(t *testing.T) {
	s, b, want := testProblem(t)
	opt := retryOpt()
	opt.Hooks = failFirstFactor(faultinject.NegativePivot(100))
	res, err := Solve(s, b, opt)
	checkRecovered(t, res, err, 1, "pivot")
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("recovered solution off by %g at %d", math.Abs(res.X[i]-want[i]), i)
		}
	}
}

func TestRecoveryFromInjectedNaNPivot(t *testing.T) {
	s, b, _ := testProblem(t)
	opt := retryOpt()
	opt.Hooks = failFirstFactor(faultinject.NaNPivot(50))
	res, err := Solve(s, b, opt)
	checkRecovered(t, res, err, 1, "pivot NaN")
}

func TestRecoveryFromInjectedIndefiniteness(t *testing.T) {
	s, b, _ := testProblem(t)
	opt := retryOpt()
	opt.Hooks = failPrecond(faultinject.ModeIndefinite, 0)
	res, err := Solve(s, b, opt)
	checkRecovered(t, res, err, 1, "positive definite")
}

func TestRecoveryFromInjectedNaNPropagation(t *testing.T) {
	s, b, _ := testProblem(t)
	opt := retryOpt()
	opt.Hooks = failPrecond(faultinject.ModeNaN, 0)
	res, err := Solve(s, b, opt)
	checkRecovered(t, res, err, 1, "positive definite")
}

func TestRecoveryFromInjectedStagnation(t *testing.T) {
	s, b, _ := testProblem(t)
	opt := retryOpt()
	opt.Hooks = failPrecond(faultinject.ModeStagnate, 0)
	res, err := Solve(s, b, opt)
	checkRecovered(t, res, err, 1, "stagnated")
	if res.Attempts[0].Iterations == 0 {
		t.Fatal("stagnated attempt should record the iterations it burned")
	}
}

// TestEscalationReachesDirect: when every randomized attempt is
// sabotaged, the ladder must bottom out at the deterministic direct
// Cholesky and still converge.
func TestEscalationReachesDirect(t *testing.T) {
	s, b, want := testProblem(t)
	opt := retryOpt()
	opt.Retry.MaxAttempts = 4
	opt.Hooks = failPrecond(faultinject.ModeIndefinite, 0, 1, 2)
	res, err := Solve(s, b, opt)
	checkRecovered(t, res, err, 3, "positive definite")
	last := res.Attempts[len(res.Attempts)-1]
	if last.Method != MethodDirect {
		t.Fatalf("final rung is %v, want MethodDirect", last.Method)
	}
	// The ladder must walk LT-RChol → LT-RChol (reseed) → RChol → direct.
	if res.Attempts[0].Seed == res.Attempts[1].Seed {
		t.Fatal("retry did not reseed the factorization")
	}
	if res.Attempts[2].Method != MethodRChol {
		t.Fatalf("third rung is %v, want MethodRChol", res.Attempts[2].Method)
	}
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-6 {
			t.Fatalf("escalated solution off by %g", math.Abs(res.X[i]-want[i]))
		}
	}
}

// TestRecoveryExhaustion: when the ladder runs out of rungs the caller
// gets a typed SolveError whose trail records every attempt.
func TestRecoveryExhaustion(t *testing.T) {
	s, b, _ := testProblem(t)
	opt := retryOpt()
	opt.Retry = RetryPolicy{MaxAttempts: 2} // no escalation: two reseeds, both sabotaged
	opt.Hooks = failPrecond(faultinject.ModeIndefinite, 0, 1)
	_, err := Solve(s, b, opt)
	var se *SolveError
	if !errors.As(err, &se) {
		t.Fatalf("got %T (%v), want *SolveError", err, err)
	}
	if len(se.Attempts) != 2 {
		t.Fatalf("trail has %d attempts, want 2: %v", len(se.Attempts), se.Attempts)
	}
	if !errors.Is(err, pcg.ErrIndefinite) {
		t.Fatalf("SolveError must unwrap to the last failure, got %v", err)
	}
}

// TestSetupRecoveryInNewSolver: a breakdown during NewSolver's
// factorization walks the same ladder, recorded in SetupAttempts.
func TestSetupRecoveryInNewSolver(t *testing.T) {
	s, b, _ := testProblem(t)
	opt := retryOpt()
	opt.Hooks = failFirstFactor(faultinject.NegativePivot(10))
	solver, err := NewSolver(s, opt)
	if err != nil {
		t.Fatalf("NewSolver did not recover: %v", err)
	}
	trail := solver.SetupAttempts()
	if len(trail) != 2 || trail[0].Err == "" || trail[1].Err != "" {
		t.Fatalf("setup trail = %v, want one failure then one success", trail)
	}
	res, err := solver.Solve(b)
	if err != nil || !res.Converged {
		t.Fatalf("solve after setup recovery: %v", err)
	}
}

// TestNoFaultPathBitwiseIdenticalWithRecovery is the referee for the
// determinism contract: enabling recovery must not change a single bit
// of a solve whose first attempt succeeds.
func TestNoFaultPathBitwiseIdenticalWithRecovery(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, m := range []Method{MethodPowerRChol, MethodRChol, MethodLTRChol} {
		plain, err := Solve(s, b, Options{Method: m, Tol: 1e-8, Seed: 5})
		if err != nil {
			t.Fatalf("%v plain: %v", m, err)
		}
		recov, err := Solve(s, b, Options{Method: m, Tol: 1e-8, Seed: 5,
			Retry: RetryPolicy{MaxAttempts: 4, Escalate: true}})
		if err != nil {
			t.Fatalf("%v with recovery: %v", m, err)
		}
		if plain.Iterations != recov.Iterations {
			t.Fatalf("%v: recovery changed iteration count %d → %d", m, plain.Iterations, recov.Iterations)
		}
		assertBitwise(t, m.String()+" recovery-enabled solve", recov.X, plain.X)
		if len(recov.Attempts) != 1 || recov.Attempts[0].Err != "" {
			t.Fatalf("%v: no-fault trail = %v, want single success", m, recov.Attempts)
		}
		if len(plain.Attempts) != 0 {
			t.Fatalf("%v: recovery-disabled solve grew a trail: %v", m, plain.Attempts)
		}
	}
}

// TestCancelledContextAbortsFactorization: a pre-cancelled context must
// abort inside core.Factorize, not after it.
func TestCancelledContextAbortsFactorization(t *testing.T) {
	s, b, _ := testProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, s, b, Options{Method: MethodPowerRChol}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if _, err := NewSolverContext(ctx, s, Options{Method: MethodPowerRChol}); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewSolverContext: got %v, want context.Canceled", err)
	}
}

// TestCancelledContextAbortsPCG: cancellation during the iteration phase
// (factor already built) must surface promptly from Solve and SolveBatch.
func TestCancelledContextAbortsPCG(t *testing.T) {
	s, b, _ := testProblem(t)
	solver, err := NewSolver(s, Options{Method: MethodJacobi, Tol: 1e-12})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := solver.SolveContext(ctx, b); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext: got %v, want context.Canceled", err)
	}
	results, err := solver.SolveBatchContext(ctx, batchRHS(s.N(), 4, 3))
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("SolveBatchContext: got %T (%v), want *BatchError", err, err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("BatchError must unwrap to context.Canceled, got %v", err)
	}
	for i, r := range results {
		if r != nil && r.Converged {
			t.Fatalf("rhs %d reported converged despite cancellation", i)
		}
	}
}

// TestDeadlineAbortsMidSolve: a deadline expiring while PCG is running
// must abort within an iteration and return DeadlineExceeded, with the
// best iterate seen so far.
func TestDeadlineAbortsMidSolve(t *testing.T) {
	s := testmat.GridSDDM(64, 64)
	r := rng.New(9)
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() - 0.5
	}
	solver, err := NewSolver(s, Options{Method: MethodJacobi, Tol: 1e-30, MaxIter: 100000})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := solver.SolveContext(ctx, b)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, want prompt abort", elapsed)
	}
	if res == nil || res.Iterations == 0 || res.X == nil {
		t.Fatalf("cancelled solve must return the partial result, got %+v", res)
	}
}

// TestSolveBatchPoisonedRHS: one NaN right-hand side fails alone; the
// rest of the batch completes, and the error reports per-RHS failures.
func TestSolveBatchPoisonedRHS(t *testing.T) {
	s, _, _ := testProblem(t)
	solver, err := NewSolver(s, Options{Method: MethodPowerRChol, Tol: 1e-8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rhs := batchRHS(s.N(), 4, 21)
	rhs[2][5] = math.NaN()
	results, err := solver.SolveBatch(rhs)
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("got %T (%v), want *BatchError", err, err)
	}
	for i := range rhs {
		if i == 2 {
			if be.Errs[2] == nil {
				t.Fatal("poisoned rhs reported no error")
			}
			if results[2] != nil && results[2].Converged {
				t.Fatal("poisoned rhs reported converged")
			}
			continue
		}
		if be.Errs[i] != nil {
			t.Fatalf("healthy rhs %d failed: %v", i, be.Errs[i])
		}
		if results[i] == nil || !results[i].Converged {
			t.Fatalf("healthy rhs %d did not converge", i)
		}
	}
	// The per-index failure must match what a direct solve reports.
	if _, direct := solver.Solve(rhs[2]); direct == nil {
		t.Fatal("direct solve of the poisoned rhs should fail too")
	}
}

// TestBestIterateOnCap: a capped run must return the best iterate seen,
// not the last one.
func TestBestIterateOnCap(t *testing.T) {
	s, b, _ := testProblem(t)
	res, err := Solve(s, b, Options{Method: MethodJacobi, Tol: 1e-14, MaxIter: 8})
	if !errors.Is(err, ErrNotConverged) {
		t.Fatalf("got %v, want ErrNotConverged", err)
	}
	var nc *NotConvergedError
	if !errors.As(err, &nc) {
		t.Fatalf("got %T, want *NotConvergedError", err)
	}
	if nc.Method != MethodJacobi || nc.Iterations != 8 || nc.Residual != res.Residual {
		t.Fatalf("NotConvergedError fields wrong: %+v vs result %+v", nc, res)
	}
	for _, h := range res.History {
		if res.Residual > h {
			t.Fatalf("returned residual %g is worse than history entry %g: not the best iterate", res.Residual, h)
		}
	}
}

// TestOptionsValidation: bad options are rejected up front by every
// entry point, not silently defaulted or crashed on deep in the
// pipeline.
func TestOptionsValidation(t *testing.T) {
	s, b, _ := testProblem(t)
	bad := []Options{
		{Tol: -1},
		{Tol: math.NaN()},
		{MaxIter: -5},
		{Workers: -2},
		{Buckets: -1},
		{Samples: -3},
		{Retry: RetryPolicy{MaxAttempts: -1}},
		{HeavyFactor: math.NaN()},
	}
	for _, opt := range bad {
		if _, err := Solve(s, b, opt); err == nil {
			t.Errorf("Solve accepted bad options %+v", opt)
		}
		if _, err := NewSolver(s, opt); err == nil {
			t.Errorf("NewSolver accepted bad options %+v", opt)
		}
	}
	// The zero value must keep meaning "paper defaults".
	if _, err := Solve(s, b, Options{}); err != nil {
		t.Fatalf("zero-value options rejected: %v", err)
	}
}
