package powerrchol_test

import (
	"fmt"

	"powerrchol"
	"powerrchol/internal/graph"
	"powerrchol/internal/sparse"
)

// Solving a small SDDM assembled in triplet form with the default
// PowerRChol pipeline.
func ExampleSolve() {
	// 1-D resistor chain with unit conductances, grounded at node 0.
	const n = 5
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i+1 < n; i++ {
		coo.AddSym(i, i+1, -1)
	}
	coo.Add(0, 0, 2) // one incident edge plus 1 S to ground
	for i := 1; i < n-1; i++ {
		coo.Add(i, i, 2)
	}
	coo.Add(n-1, n-1, 1)

	sys, err := graph.SplitCSC(coo.ToCSC(), 1e-12)
	if err != nil {
		panic(err)
	}
	b := []float64{1, 0, 0, 0, 0} // 1 A injected at node 0
	res, err := powerrchol.Solve(sys, b, powerrchol.Options{Tol: 1e-12})
	if err != nil {
		panic(err)
	}
	// all current exits through node 0's ground conductance: v = 1 V
	fmt.Printf("converged=%v v0=%.3f v4=%.3f\n", res.Converged, res.X[0], res.X[4])
	// Output: converged=true v0=1.000 v4=1.000
}

// A prepared Solver amortizes the factorization across right-hand sides.
func ExampleSolver() {
	g := graph.New(3, 2)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	sys, err := graph.NewSDDM(g, []float64{1, 0, 0}) // grounded at node 0
	if err != nil {
		panic(err)
	}
	solver, err := powerrchol.NewSolver(sys, powerrchol.Options{Tol: 1e-12})
	if err != nil {
		panic(err)
	}
	for _, amps := range []float64{1, 2} {
		res, err := solver.Solve([]float64{0, 0, amps})
		if err != nil {
			panic(err)
		}
		// current flows through two unit resistors plus the 1 S ground:
		// v2 = amps * (1 + 1 + 1)
		fmt.Printf("%.0f A -> v2 = %.2f V\n", amps, res.X[2])
	}
	// Output:
	// 1 A -> v2 = 3.00 V
	// 2 A -> v2 = 6.00 V
}
