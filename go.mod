module powerrchol

go 1.22
