package powerrchol

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	"powerrchol/internal/graph"
	"powerrchol/internal/rng"
	"powerrchol/internal/testmat"
)

// Cross-front-end equivalence suite. Both public entry points —
// the one-shot Solve and the prepared NewSolver+Solve — are thin
// drivers over internal/pipeline, so for every method × ordering the
// two must produce bit-identical solutions from the same Options. Any
// divergence means the refactored front-ends smuggled in their own
// setup logic again; this suite is the tripwire.

// equivalenceOpt pins the configuration both front-ends run under.
// Workers is left 0 (serial): parallel blocked reductions are only
// reproducible for a fixed Workers value, and the contract under test
// is front-end identity, not worker-count identity.
func equivalenceOpt(m Method, o Ordering) Options {
	return Options{Method: m, Ordering: o, Tol: 1e-8, MaxIter: 5000, Seed: 17}
}

func orderingsFor(mi MethodInfo) []Ordering {
	if !mi.Ordered {
		return []Ordering{OrderDefault}
	}
	return []Ordering{OrderDefault, OrderAlg4, OrderAMD, OrderNatural, OrderRCM}
}

// TestFrontEndEquivalence drives the full method table (from the
// pipeline registry, so a newly registered method is covered
// automatically) against every ordering and asserts bitwise identity
// between the two front-ends. Contraction-bearing plans have no
// prepared form; for those the test pins the rejection instead.
func TestFrontEndEquivalence(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, mi := range Methods() {
		for _, o := range orderingsFor(mi) {
			name := fmt.Sprintf("%s/%v", mi.Name, o)
			opt := equivalenceOpt(mi.Method, o)
			oneShot, err := Solve(s, b, opt)
			if err != nil {
				t.Errorf("%s: one-shot Solve: %v", name, err)
				continue
			}
			if !mi.Prepared {
				if _, err := NewSolver(s, opt); err == nil {
					t.Errorf("%s: NewSolver accepted a contracting plan", name)
				}
				continue
			}
			solver, err := NewSolver(s, opt)
			if err != nil {
				t.Errorf("%s: NewSolver: %v", name, err)
				continue
			}
			prepared, err := solver.Solve(b)
			if err != nil {
				t.Errorf("%s: prepared Solve: %v", name, err)
				continue
			}
			if prepared.Iterations != oneShot.Iterations {
				t.Errorf("%s: prepared took %d iterations, one-shot %d",
					name, prepared.Iterations, oneShot.Iterations)
			}
			if prepared.FactorNNZ != oneShot.FactorNNZ {
				t.Errorf("%s: prepared |L|=%d, one-shot |L|=%d",
					name, prepared.FactorNNZ, oneShot.FactorNNZ)
			}
			assertBitwise(t, name+" front-end equivalence", prepared.X, oneShot.X)
		}
	}
}

// TestFrontEndEquivalenceUnderRecovery repeats the identity check with
// the recovery ladder armed: the Runner's plan rewriting must be
// front-end independent too, trail included.
func TestFrontEndEquivalenceUnderRecovery(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, m := range []Method{MethodPowerRChol, MethodRChol, MethodLTRChol} {
		opt := equivalenceOpt(m, OrderDefault)
		opt.Retry = RetryPolicy{MaxAttempts: 4, Escalate: true}
		oneShot, err := Solve(s, b, opt)
		if err != nil {
			t.Fatalf("%v one-shot: %v", m, err)
		}
		solver, err := NewSolver(s, opt)
		if err != nil {
			t.Fatalf("%v NewSolver: %v", m, err)
		}
		prepared, err := solver.Solve(b)
		if err != nil {
			t.Fatalf("%v prepared: %v", m, err)
		}
		assertBitwise(t, m.String()+" recovery-armed equivalence", prepared.X, oneShot.X)
		if len(solver.SetupAttempts()) != 1 || solver.SetupAttempts()[0].Err != "" {
			t.Fatalf("%v: setup trail = %v, want single success", m, solver.SetupAttempts())
		}
	}
}

// checkComposition solves the test grid under opt and checks the
// solution against the dense reference to 1e-6.
func checkComposition(t *testing.T, name string, opt Options) *Result {
	t.Helper()
	s, b, want := testProblem(t)
	res, err := Solve(s, b, opt)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if !res.Converged {
		t.Fatalf("%s: not converged (residual %g)", name, res.Residual)
	}
	var maxErr float64
	for i := range want {
		if e := math.Abs(res.X[i] - want[i]); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 1e-6 {
		t.Fatalf("%s: solution off by %g", name, maxErr)
	}
	return res
}

// TestCompositionMergeWithRandomizedFactor: PowerRush's resistor-merge
// contraction feeding the paper's randomized LT-RChol preconditioner —
// a composition the pre-pipeline front-ends could not express (the
// contraction was welded to AMG inside the PowerRush arm).
func TestCompositionMergeWithRandomizedFactor(t *testing.T) {
	for _, m := range []Method{MethodPowerRChol, MethodLTRChol, MethodRChol} {
		opt := Options{Method: m, Transform: TransformMerge, Tol: 1e-10, MaxIter: 5000, Seed: 3}
		res := checkComposition(t, m.String()+"+merge", opt)
		if res.Iterations == 0 {
			t.Fatalf("%v+merge: zero iterations reported", m)
		}
		// Contraction changes the unknowns, so the prepared front-end
		// must keep refusing this plan no matter the method.
		s, _, _ := testProblem(t)
		if _, err := NewSolver(s, opt); err == nil {
			t.Fatalf("%v+merge: NewSolver accepted a contracting plan", m)
		}
	}
}

// TestCompositionMergeActuallyContracts: on a grid overlaid with
// near-short-circuit vias the merge transform genuinely contracts, the
// randomized factor is built on the smaller system, and the expanded
// solution still tracks the full solve to the via-resistance scale.
func TestCompositionMergeActuallyContracts(t *testing.T) {
	r := rng.New(7)
	nx, ny := 12, 12
	g := testmat.Grid2D(nx, ny)
	for k := 0; k < 10; k++ {
		u := r.Intn(nx*ny - 1)
		g.MustAddEdge(u, u+1, 1e7)
	}
	d := make([]float64, nx*ny)
	d[0], d[nx*ny-1] = 1, 1
	s, err := graph.NewSDDM(g, d)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, s.N())
	for i := range b {
		b[i] = r.Float64() * 0.01
	}
	want, err := testmat.DenseSolveSPD(s.ToCSC().Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Solve(s, b, Options{Method: MethodPowerRChol, Transform: TransformNone, Tol: 1e-12, MaxIter: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	merged, err := Solve(s, b, Options{Method: MethodPowerRChol, Transform: TransformMerge, Tol: 1e-12, MaxIter: 5000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !merged.Converged {
		t.Fatalf("merged solve did not converge: %g", merged.Residual)
	}
	if len(merged.X) != s.N() {
		t.Fatalf("solution not expanded to the original unknowns: %d vs %d", len(merged.X), s.N())
	}
	if merged.FactorNNZ >= full.FactorNNZ {
		t.Fatalf("vias were not contracted: merged |L|=%d, full |L|=%d", merged.FactorNNZ, full.FactorNNZ)
	}
	var maxErr, scale float64
	for i := range want {
		if e := math.Abs(merged.X[i] - want[i]); e > maxErr {
			maxErr = e
		}
		if a := math.Abs(want[i]); a > scale {
			scale = a
		}
	}
	if maxErr > 1e-3*scale {
		t.Fatalf("contracted solution off by %g (scale %g)", maxErr, scale)
	}
}

// TestCompositionFeGRASSWithRandomizedFactor: a feGRASS spectral
// sparsifier feeding LT-RChol/RChol — the other previously impossible
// composition (sparsification was welded to complete/incomplete
// Cholesky in the feGRASS arms). The factor is built on the
// sparsifier, iteration runs on the original system, so the plan is
// prepared-compatible; both front-ends must agree bitwise.
func TestCompositionFeGRASSWithRandomizedFactor(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, m := range []Method{MethodPowerRChol, MethodLTRChol} {
		opt := Options{Method: m, Transform: TransformFeGRASS, Tol: 1e-10, MaxIter: 5000, Seed: 3}
		res := checkComposition(t, m.String()+"+fegrass", opt)
		if res.Iterations == 0 {
			t.Fatalf("%v+fegrass: zero iterations reported", m)
		}
		solver, err := NewSolver(s, opt)
		if err != nil {
			t.Fatalf("%v+fegrass: NewSolver: %v", m, err)
		}
		prepared, err := solver.Solve(b)
		if err != nil {
			t.Fatalf("%v+fegrass: prepared Solve: %v", m, err)
		}
		assertBitwise(t, m.String()+"+fegrass front-end equivalence", prepared.X, res.X)
	}
}

// TestTransformNoneStripsDefaults: TransformNone must disable the
// method's own transform stage — feGRASS without sparsification is a
// complete Cholesky of the original system, i.e. an exact solve.
func TestTransformNoneStripsDefaults(t *testing.T) {
	res := checkComposition(t, "fegrass+none",
		Options{Method: MethodFeGRASS, Transform: TransformNone, Tol: 1e-10})
	if res.Iterations != 0 {
		t.Fatalf("unsparsified feGRASS is a complete factor; want exact apply, got %d iterations", res.Iterations)
	}
}

// TestIndexWidthEquivalence: the compact (int32) index mode must be
// invisible in solve results. For every method × ordering the one-shot
// Solve under IndexCompact and IndexAuto must reproduce the wide solve
// bit for bit — same iterate, same iteration count, same |L| — while
// the factor's index storage drops to exactly half the bytes. Any
// drift means a compact kernel reordered a float operation.
func TestIndexWidthEquivalence(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, mi := range Methods() {
		for _, o := range orderingsFor(mi) {
			name := fmt.Sprintf("%s/%v", mi.Name, o)
			wide, err := Solve(s, b, equivalenceOpt(mi.Method, o))
			if err != nil {
				t.Errorf("%s: wide Solve: %v", name, err)
				continue
			}
			for _, mode := range []IndexMode{IndexCompact, IndexAuto} {
				opt := equivalenceOpt(mi.Method, o)
				opt.CompactIndex = mode
				compact, err := Solve(s, b, opt)
				if err != nil {
					t.Errorf("%s/%v: compact Solve: %v", name, mode, err)
					continue
				}
				if compact.Iterations != wide.Iterations {
					t.Errorf("%s/%v: compact took %d iterations, wide %d",
						name, mode, compact.Iterations, wide.Iterations)
				}
				if compact.FactorNNZ != wide.FactorNNZ {
					t.Errorf("%s/%v: compact |L|=%d, wide |L|=%d",
						name, mode, compact.FactorNNZ, wide.FactorNNZ)
				}
				if wide.FactorIndexBytes > 0 && compact.FactorIndexBytes*2 != wide.FactorIndexBytes {
					t.Errorf("%s/%v: index bytes not halved: compact %d, wide %d",
						name, mode, compact.FactorIndexBytes, wide.FactorIndexBytes)
				}
				assertBitwise(t, fmt.Sprintf("%s/%v index-width equivalence", name, mode), compact.X, wide.X)
			}
		}
	}
}

// TestIndexWidthEquivalencePrepared: the prepared front-end under
// IndexCompact — where both the factor and the iteration matrix live in
// int32 storage and PCG multiplies through the Op entry points — must
// agree bitwise with the wide prepared Solver, cold and warm starts
// alike. This round-trip is also the tripwire guarding the seed-state
// contract: a compact build that consumed randomness differently would
// change the iterate here before it ever reached seedstate.golden.
func TestIndexWidthEquivalencePrepared(t *testing.T) {
	s, b, _ := testProblem(t)
	for _, mi := range Methods() {
		if !mi.Prepared {
			continue
		}
		name := mi.Name
		wideSolver, err := NewSolver(s, equivalenceOpt(mi.Method, OrderDefault))
		if err != nil {
			t.Errorf("%s: wide NewSolver: %v", name, err)
			continue
		}
		opt := equivalenceOpt(mi.Method, OrderDefault)
		opt.CompactIndex = IndexCompact
		compactSolver, err := NewSolver(s, opt)
		if err != nil {
			t.Errorf("%s: compact NewSolver: %v", name, err)
			continue
		}
		if w, c := wideSolver.FactorIndexBytes(), compactSolver.FactorIndexBytes(); w > 0 && c*2 != w {
			t.Errorf("%s: prepared index bytes not halved: compact %d, wide %d", name, c, w)
		}
		wide, err := wideSolver.Solve(b)
		if err != nil {
			t.Errorf("%s: wide prepared Solve: %v", name, err)
			continue
		}
		compact, err := compactSolver.Solve(b)
		if err != nil {
			t.Errorf("%s: compact prepared Solve: %v", name, err)
			continue
		}
		assertBitwise(t, name+" prepared index-width equivalence", compact.X, wide.X)

		// Warm start through SolveFromOp: perturb the solution and
		// resolve; both widths must walk the identical trajectory.
		x0 := make([]float64, len(wide.X))
		for i, v := range wide.X {
			x0[i] = v * 0.9
		}
		wideWarm, werr := wideSolver.SolveFrom(b, x0)
		compactWarm, cerr := compactSolver.SolveFrom(b, x0)
		if werr != nil || cerr != nil {
			t.Errorf("%s: warm solves: wide %v, compact %v", name, werr, cerr)
			continue
		}
		if compactWarm.Iterations != wideWarm.Iterations {
			t.Errorf("%s: warm compact took %d iterations, wide %d",
				name, compactWarm.Iterations, wideWarm.Iterations)
		}
		assertBitwise(t, name+" warm-start index-width equivalence", compactWarm.X, wideWarm.X)
	}
}

// TestCancelEveryPreparedMethod: a pre-cancelled context must abort
// NewSolverContext for every registered method — this is what forces
// the transform/order/factorize stages of every composition (ichol,
// feGRASS, AMG setup included) to carry the context. PowerRush has no
// prepared form, so its one-shot setup is checked instead.
func TestCancelEveryPreparedMethod(t *testing.T) {
	s, b, _ := testProblem(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, mi := range Methods() {
		opt := equivalenceOpt(mi.Method, OrderDefault)
		if !mi.Prepared {
			if _, err := SolveContext(ctx, s, b, opt); !errors.Is(err, context.Canceled) {
				t.Errorf("%s: one-shot setup under cancelled ctx: got %v, want context.Canceled", mi.Name, err)
			}
			continue
		}
		if _, err := NewSolverContext(ctx, s, opt); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: NewSolverContext under cancelled ctx: got %v, want context.Canceled", mi.Name, err)
		}
	}
}
